//! In-band cross-device trace propagation: the NDEF glue between
//! `morena-obs`' [`TraceContext`] and beam/peer payloads.
//!
//! A causal trace must survive the hop between phones, and the only
//! channel the middleware owns there is the NDEF message itself. So the
//! sender's executor appends one reserved external record
//! ([`morena_ndef::TRACE_RECORD_TYPE`], payload =
//! [`TraceContext::to_wire`]) to the outgoing message, and the receiving
//! side strips it *before* converters or `check_condition` predicates
//! see the message — applications never observe the record, but the
//! receiving phone's handler span carries the sender's `trace_id`.
//!
//! The record rides the same mechanism as the lease lock
//! ([`crate::lease`]): tagged content stays well-formed NDEF, and peers
//! that predate tracing (or the `baseline` tech stack) carry the record
//! through untouched as an unknown external type.

use morena_ndef::{NdefMessage, NdefRecord, Tnf, TRACE_RECORD_TYPE};
use morena_obs::{trace, TraceContext};

/// Encodes `ctx` as the reserved trace-context record.
pub fn trace_record(ctx: TraceContext) -> NdefRecord {
    NdefRecord::external(TRACE_RECORD_TYPE, ctx.to_wire().to_vec())
        .expect("trace record within limits")
}

/// Decodes a trace context from `record`, if it is a trace record with
/// a payload this version understands.
pub fn trace_from_record(record: &NdefRecord) -> Option<TraceContext> {
    if record.tnf() != Tnf::External || record.record_type() != TRACE_RECORD_TYPE.as_bytes() {
        return None;
    }
    TraceContext::from_wire(record.payload())
}

/// Whether `record` carries the reserved trace type (any payload — an
/// unknown wire version is still ours to strip, just not to decode).
fn is_trace_record(record: &NdefRecord) -> bool {
    record.tnf() == Tnf::External && record.record_type() == TRACE_RECORD_TYPE.as_bytes()
}

/// Finds the sender's trace context in `message`, if present.
pub fn find_trace(message: &NdefMessage) -> Option<TraceContext> {
    message.iter().find_map(trace_from_record)
}

/// Removes any trace-context record from `message`, returning the bare
/// application content.
pub fn strip_trace(message: &NdefMessage) -> NdefMessage {
    let records: Vec<NdefRecord> =
        message.iter().filter(|r| !is_trace_record(r)).cloned().collect();
    NdefMessage::new(records)
}

/// Appends `ctx`'s record to the application content of `message`
/// (replacing any previous trace record, dropping empty placeholder
/// records the real content makes redundant).
pub fn with_trace(message: &NdefMessage, ctx: TraceContext) -> NdefMessage {
    let mut records: Vec<NdefRecord> =
        message.iter().filter(|r| !is_trace_record(r) && !r.is_empty_record()).cloned().collect();
    records.push(trace_record(ctx));
    NdefMessage::new(records)
}

/// Stamps an encoded outgoing beam/peer payload with the calling
/// thread's ambient trace context, if there is a *sampled* one (an
/// unsampled trace propagates locally but is not worth the extra wire
/// bytes — the receiver would drop every event anyway).
///
/// Returns `None` when the payload should go out unchanged: no ambient
/// context, unsampled, or bytes that do not parse as NDEF (nothing the
/// middleware should rewrite).
pub fn stamp_outgoing(bytes: &[u8]) -> Option<Vec<u8>> {
    let ctx = trace::current().filter(|c| c.sampled)?;
    let message = NdefMessage::parse(bytes).ok()?;
    Some(with_trace(&message, ctx).to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_ndef::rtd::TextRecord;

    fn content() -> NdefMessage {
        NdefMessage::new(vec![TextRecord::new("en", "payload").to_record()])
    }

    #[test]
    fn with_trace_appends_and_strip_restores_content() {
        let message = content();
        let ctx = TraceContext::root(42, 7);
        let tagged = with_trace(&message, ctx);
        assert_eq!(tagged.records().len(), 2);
        let found = find_trace(&tagged).expect("trace present");
        assert_eq!(found.trace_id, 42);
        assert_eq!(found.span_id, 7);
        assert_eq!(strip_trace(&tagged), message);
        assert_eq!(find_trace(&message), None);
    }

    #[test]
    fn with_trace_replaces_a_previous_context() {
        let tagged = with_trace(&content(), TraceContext::root(1, 1));
        let retagged = with_trace(&tagged, TraceContext::root(2, 9));
        assert_eq!(retagged.records().len(), 2, "old record replaced, not stacked");
        assert_eq!(find_trace(&retagged).expect("trace").trace_id, 2);
    }

    #[test]
    fn tagged_message_round_trips_through_wire_bytes() {
        let tagged = with_trace(&content(), TraceContext::root(99, 3));
        let parsed = NdefMessage::parse(&tagged.to_bytes()).expect("well-formed NDEF");
        assert_eq!(find_trace(&parsed).expect("trace").trace_id, 99);
    }

    #[test]
    fn unknown_wire_version_is_stripped_but_not_decoded() {
        let mut wire = TraceContext::root(5, 5).to_wire().to_vec();
        wire[0] = 0xFF;
        let alien = NdefRecord::external(TRACE_RECORD_TYPE, wire).unwrap();
        let message = NdefMessage::new(vec![TextRecord::new("en", "x").to_record(), alien]);
        assert_eq!(find_trace(&message), None);
        assert_eq!(strip_trace(&message).records().len(), 1);
    }

    #[test]
    fn stamp_outgoing_requires_a_sampled_ambient_context() {
        let bytes = content().to_bytes();
        assert_eq!(stamp_outgoing(&bytes), None, "no ambient context");
        let sampled = trace::with(Some(TraceContext::root(8, 2)), || stamp_outgoing(&bytes))
            .expect("stamped");
        let parsed = NdefMessage::parse(&sampled).unwrap();
        assert_eq!(find_trace(&parsed).expect("trace").trace_id, 8);
        let dark = trace::with(Some(TraceContext::unsampled_root(9, 3)), || stamp_outgoing(&bytes));
        assert_eq!(dark, None, "unsampled traces stay off the wire");
    }
}
