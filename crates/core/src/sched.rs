//! The execution engine behind far-reference event loops: a sharded
//! worker-pool scheduler.
//!
//! The paper gives every far reference *"a private event loop that uses
//! its own thread of control"* — semantics this module preserves while
//! decoupling them from OS threads (the RAFDA separation of distribution
//! policy from application logic). Each loop is a poll-able state
//! machine ([`PollTask`]); a fixed pool of workers (default
//! `min(cores, 8)`) drives many such machines:
//!
//! * every loop is pinned to exactly one **shard** (round-robin at
//!   creation), and each shard is owned by exactly one worker thread —
//!   so a loop is only ever polled by a single thread at a time,
//!   trivially preserving per-loop FIFO and the one-in-flight-attempt
//!   invariant;
//! * a per-loop **wake flag** deduplicates wake-ups: `WaitSignal`
//!   notifications, connectivity changes, and new submissions re-enqueue
//!   exactly the affected loop onto its shard's ready queue, at most
//!   once until the next poll;
//! * deadline expiries (op timeouts, retry backoffs) go through a
//!   per-shard timer heap owned by the worker, fed back through the
//!   shard's [`WaitSignal`] so virtual clocks drive them exactly like
//!   the dedicated-thread build did.
//!
//! The paper-literal policy survives as
//! [`ExecutionPolicy::ThreadPerLoop`]: one dedicated driver thread per
//! loop, running the *same* poll state machine, so both policies share
//! one semantics implementation and the tests can run under either.
//!
//! Scheduler health is observable through the `scheduler.*` metrics:
//! `scheduler.polls` / `scheduler.parks` / `scheduler.wakeups` /
//! `scheduler.timer_fires` counters, the `scheduler.shard_depth` gauge
//! (currently enqueued, not-yet-polled loops across all shards), and the
//! `scheduler.poll_ns` histogram (wall-clock latency of single polls).

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use morena_nfc_sim::clock::{Clock, SimInstant, WaitSignal};
use morena_obs::inspect::{ComponentSnapshot, ShardSnapshot, SnapshotProvider};
use morena_obs::{Counter, Gauge, Histogram, MemFootprint, Recorder};
use parking_lot::Mutex;

/// What a loop wants from the scheduler after one poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LoopPoll {
    /// Made progress and can make more right now — re-enqueue immediately
    /// (one unit of work per poll keeps shards fair).
    Runnable,
    /// Blocked until the given instant (head-op deadline or retry
    /// backoff) — earlier external wakes re-arm it sooner.
    RunnableAt(SimInstant),
    /// Nothing to do until an external wake (queue empty, or waiting on
    /// events that will call `wake`).
    Park,
    /// Stopped and drained; the task never becomes runnable again.
    Idle,
}

/// A poll-able loop state machine.
///
/// Contract: `poll` is only ever called by the single thread driving the
/// task (its shard's worker, or its dedicated driver thread), but
/// `try_schedule`/`clear_scheduled` race freely with wakers.
pub(crate) trait PollTask: Send + Sync + 'static {
    /// Runs at most one unit of work; see [`LoopPoll`].
    fn poll(&self) -> LoopPoll;

    /// Attempts to transition unscheduled → scheduled. `true` means the
    /// caller won the race and must enqueue the task; `false` means it is
    /// already queued (the pending poll will observe whatever state the
    /// waker changed).
    fn try_schedule(&self) -> bool;

    /// Clears the scheduled flag. Workers call this *before* polling so
    /// a wake arriving mid-poll re-enqueues the task.
    fn clear_scheduled(&self);
}

/// How far-reference event loops get their processor time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecutionPolicy {
    /// The paper-literal model: one dedicated OS thread per event loop.
    /// Simple, but threads scale linearly with references.
    ThreadPerLoop,
    /// Green loops on a fixed worker pool: every loop is pinned to one of
    /// `workers` shards. Thread count stays constant no matter how many
    /// references exist.
    Sharded {
        /// Number of worker threads (and shards). Clamped to at least 1.
        workers: usize,
    },
}

impl ExecutionPolicy {
    /// The default sharded policy: `min(available cores, 8)` workers.
    pub fn sharded_default() -> ExecutionPolicy {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        ExecutionPolicy::Sharded { workers: cores.min(8) }
    }
}

impl Default for ExecutionPolicy {
    fn default() -> ExecutionPolicy {
        ExecutionPolicy::sharded_default()
    }
}

/// Metric handles resolved once at pool creation.
#[derive(Clone)]
struct SchedMetrics {
    polls: Counter,
    parks: Counter,
    wakeups: Counter,
    timer_fires: Counter,
    shard_depth: Gauge,
    poll_ns: Arc<Histogram>,
}

impl SchedMetrics {
    fn resolve(recorder: &Recorder) -> SchedMetrics {
        let m = recorder.metrics();
        SchedMetrics {
            polls: m.counter("scheduler.polls"),
            parks: m.counter("scheduler.parks"),
            wakeups: m.counter("scheduler.wakeups"),
            timer_fires: m.counter("scheduler.timer_fires"),
            shard_depth: m.gauge("scheduler.shard_depth"),
            poll_ns: m.histogram("scheduler.poll_ns"),
        }
    }
}

/// One worker's slice of the pool: a ready queue plus the signal its
/// worker parks on. Tasks are pinned to a shard for life.
pub(crate) struct Shard {
    ready: Mutex<VecDeque<Arc<dyn PollTask>>>,
    signal: Arc<WaitSignal>,
    metrics: SchedMetrics,
    /// Completion-core freelist shared by every loop pinned here —
    /// cores recycle across the shard's whole population, so steady
    /// state submits allocate nothing.
    pool: Arc<crate::future::OpPool>,
    /// Position within the pool, for inspector output.
    index: usize,
    /// Loops pinned here over the shard's lifetime (pins are permanent).
    owned: AtomicU64,
    /// Clock nanos of the worker's most recent loop iteration;
    /// `u64::MAX` until the worker first runs. A shard with runnable
    /// work and a stale stamp is starved — the worker parks only when
    /// its ready queue is empty.
    last_poll: AtomicU64,
}

impl MemFootprint for Shard {
    fn mem_bytes(&self) -> u64 {
        // The worker's timer heap lives on its stack, out of reach; the
        // shard's own heap footprint is the ready queue's slot array
        // plus the parked completion-core freelist (tasks report their
        // own bytes through their loop snapshots).
        std::mem::size_of::<Shard>() as u64
            + (self.ready.lock().capacity() * std::mem::size_of::<Arc<dyn PollTask>>()) as u64
            + self.pool.mem_bytes()
    }
}

impl SnapshotProvider for Shard {
    fn snapshot(&self, now_nanos: u64) -> ComponentSnapshot {
        let last_poll = self.last_poll.load(Ordering::Relaxed);
        // Hoisted out of the literal: a `.lock()` temporary inside it
        // would still be held when `mem_bytes` re-locks `ready`.
        let run_queue = self.ready.lock().len();
        let mem_bytes = self.mem_bytes();
        let pool_free = self.pool.free_len();
        ComponentSnapshot::Shard(ShardSnapshot {
            index: self.index,
            loops_owned: self.owned.load(Ordering::Relaxed),
            run_queue,
            since_poll_nanos: (last_poll != u64::MAX).then(|| now_nanos.saturating_sub(last_poll)),
            pool_free,
            mem_bytes,
        })
    }
}

impl Shard {
    /// Wakes `task`: enqueues it onto this shard's ready queue unless it
    /// is already queued, and pokes the worker.
    pub(crate) fn wake(&self, task: Arc<dyn PollTask>) {
        if task.try_schedule() {
            self.ready.lock().push_back(task);
            self.metrics.shard_depth.add(1);
            self.metrics.wakeups.inc();
            self.signal.notify();
        }
    }

    /// The shard's shared completion-core freelist.
    pub(crate) fn pool(&self) -> Arc<crate::future::OpPool> {
        Arc::clone(&self.pool)
    }
}

/// Timer-heap entry: min-ordered by instant, FIFO within an instant.
struct Timer {
    at: SimInstant,
    seq: u64,
    task: Arc<dyn PollTask>,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Timer) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Timer) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Timer) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest instant.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// The sharded worker pool.
pub(crate) struct Scheduler {
    shards: Vec<Arc<Shard>>,
    next_shard: AtomicUsize,
    shutdown: Arc<AtomicBool>,
}

impl Scheduler {
    pub(crate) fn new(workers: usize, clock: Arc<dyn Clock>, recorder: &Recorder) -> Scheduler {
        let workers = workers.max(1);
        let metrics = SchedMetrics::resolve(recorder);
        let shutdown = Arc::new(AtomicBool::new(false));
        let shards: Vec<Arc<Shard>> = (0..workers)
            .map(|index| {
                Arc::new(Shard {
                    ready: Mutex::new(VecDeque::new()),
                    signal: Arc::new(WaitSignal::new()),
                    metrics: metrics.clone(),
                    pool: crate::future::OpPool::new(),
                    index,
                    owned: AtomicU64::new(0),
                    last_poll: AtomicU64::new(u64::MAX),
                })
            })
            .collect();
        for (i, shard) in shards.iter().enumerate() {
            recorder.inspector().register(
                format!("shard-{i}"),
                Arc::downgrade(shard) as std::sync::Weak<dyn SnapshotProvider>,
            );
        }
        for (i, shard) in shards.iter().enumerate() {
            let shard = Arc::clone(shard);
            let clock = Arc::clone(&clock);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name(format!("morena-sched-{i}"))
                .spawn(move || worker(&shard, &clock, &shutdown))
                .expect("spawn scheduler worker");
        }
        Scheduler { shards, next_shard: AtomicUsize::new(0), shutdown }
    }

    /// Pins a new task to a shard (round-robin).
    pub(crate) fn assign(&self) -> Arc<Shard> {
        let i = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[i].owned.fetch_add(1, Ordering::Relaxed);
        Arc::clone(&self.shards[i])
    }

    /// Number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.shards.len()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.signal.notify();
        }
    }
}

/// The shard worker: promote due timers, poll one ready task, park when
/// there is nothing to do.
fn worker(shard: &Shard, clock: &Arc<dyn Clock>, shutdown: &AtomicBool) {
    let m = &shard.metrics;
    let mut timers: BinaryHeap<Timer> = BinaryHeap::new();
    let mut timer_seq: u64 = 0;
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        // Read the generation before inspecting state so a wake racing
        // with the inspection cuts the park short.
        let generation = shard.signal.generation();
        let now = clock.now();
        shard.last_poll.store(now.as_nanos(), Ordering::Relaxed);
        while timers.peek().is_some_and(|t| t.at <= now) {
            let timer = timers.pop().expect("peeked");
            m.timer_fires.inc();
            shard.wake(timer.task);
        }
        let task = shard.ready.lock().pop_front();
        let Some(task) = task else {
            let deadline = timers.peek().map_or(SimInstant::FAR_FUTURE, |t| t.at);
            m.parks.inc();
            clock.wait_until(&shard.signal, generation, deadline);
            continue;
        };
        m.shard_depth.sub(1);
        // Clear before polling: a wake that lands mid-poll must win the
        // `try_schedule` race and re-enqueue the task.
        task.clear_scheduled();
        let started = std::time::Instant::now();
        let outcome = task.poll();
        m.polls.inc();
        m.poll_ns.observe(started.elapsed().as_nanos() as u64);
        match outcome {
            LoopPoll::Runnable => shard.wake(task),
            LoopPoll::RunnableAt(at) => {
                timer_seq += 1;
                timers.push(Timer { at, seq: timer_seq, task });
            }
            LoopPoll::Park | LoopPoll::Idle => {}
        }
    }
}

/// A context's execution engine: either the shared worker pool or the
/// paper-literal thread-per-loop spawner.
pub(crate) enum Execution {
    /// Each loop gets its own driver thread at spawn time.
    ThreadPerLoop,
    /// Loops are pinned to the pool's shards.
    Sharded(Scheduler),
}

impl Execution {
    pub(crate) fn new(
        policy: ExecutionPolicy,
        clock: Arc<dyn Clock>,
        recorder: &Recorder,
    ) -> Execution {
        match policy {
            ExecutionPolicy::ThreadPerLoop => Execution::ThreadPerLoop,
            ExecutionPolicy::Sharded { workers } => {
                Execution::Sharded(Scheduler::new(workers, clock, recorder))
            }
        }
    }

    /// The policy this engine was built from.
    pub(crate) fn policy(&self) -> ExecutionPolicy {
        match self {
            Execution::ThreadPerLoop => ExecutionPolicy::ThreadPerLoop,
            Execution::Sharded(s) => ExecutionPolicy::Sharded { workers: s.workers() },
        }
    }
}

impl std::fmt::Debug for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Execution::ThreadPerLoop => f.write_str("Execution::ThreadPerLoop"),
            Execution::Sharded(s) => {
                f.debug_struct("Execution::Sharded").field("workers", &s.workers()).finish()
            }
        }
    }
}
