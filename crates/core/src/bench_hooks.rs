//! Bench-only harness (feature `bench-hooks`): drives the raw
//! submit→attempt→complete path of one event loop with an executor that
//! never touches a simulated radio, so benchmarks (and the CI
//! allocations-per-op gate) measure the middleware alone.
//!
//! Nothing here is meant for applications — the feature exists so
//! `morena-bench` can reach the loop state machine without going
//! through a `World`, whose simulated physics would dominate the
//! numbers the gate is trying to pin down.

use std::sync::Arc;
use std::time::Duration;

use morena_android_sim::looper::MainThread;
use morena_nfc_sim::clock::{Clock, SystemClock};
use morena_nfc_sim::error::NfcOpError;

use crate::eventloop::{EventLoop, ObsScope, OpExecutor, OpRequest, OpResponse, OpStatsSnapshot};
use crate::future::block_on;
use crate::policy::Policy;
use crate::sched::{Execution, ExecutionPolicy};

/// Completes every attempt immediately: reads return an empty payload
/// (the cached-read shape — `Vec::new()` never allocates), everything
/// else reports done.
struct NullExecutor;

impl OpExecutor for NullExecutor {
    fn connected(&self) -> bool {
        true
    }

    fn execute(&self, request: &OpRequest) -> Result<OpResponse, NfcOpError> {
        match request {
            OpRequest::Read => Ok(OpResponse::Bytes(Vec::new())),
            _ => Ok(OpResponse::Done),
        }
    }
}

/// One event loop over a [`NullExecutor`], plus the main thread and
/// worker pool keeping it alive. Every operation completes on its first
/// attempt, so a driver thread measures exactly the per-op machinery:
/// pool acquire, enqueue, wake, attempt, claim, resolve, recycle.
pub struct HotLoop {
    event_loop: EventLoop,
    // Order matters for drop: the loop detaches before its engine.
    _exec: Arc<Execution>,
    _main: MainThread,
}

impl HotLoop {
    /// Builds the harness under `policy` with a detached (disabled)
    /// recorder and the real system clock.
    pub fn new(policy: ExecutionPolicy) -> HotLoop {
        let main = MainThread::spawn();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let obs = ObsScope::detached("bench-hot-loop");
        let exec = Arc::new(Execution::new(policy, Arc::clone(&clock), &obs.recorder));
        let event_loop = EventLoop::spawn(
            "bench-hot-loop",
            &exec,
            clock,
            main.handler(),
            Policy::default(),
            NullExecutor,
            obs,
        );
        HotLoop { event_loop, _exec: exec, _main: main }
    }

    /// Submits one read as a future and blocks until it resolves —
    /// the full round the allocations-per-op gate measures.
    ///
    /// # Panics
    ///
    /// Panics if the loop fails the read (it cannot: the null executor
    /// is infallible and the harness never stops the loop mid-call).
    pub fn read_once(&self) {
        block_on(self.event_loop.submit_future(OpRequest::Read, Some(Duration::from_secs(60))))
            .expect("null executor never fails a read");
    }

    /// Lifetime operation counters of the underlying loop.
    pub fn stats(&self) -> OpStatsSnapshot {
        self.event_loop.stats().snapshot()
    }
}

impl std::fmt::Debug for HotLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotLoop").field("event_loop", &self.event_loop).finish()
    }
}
