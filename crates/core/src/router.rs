//! One event-dispatch thread per context, replacing the former
//! thread-per-reference routers.
//!
//! Every `TagReference`, `Beamer`, `PeerReference`, `BeamReceiver`, and
//! `PeerInbox` used to spawn its own thread polling the controller's
//! event feed with a 20 ms timeout — another per-reference thread on top
//! of the per-reference event loop. The [`EventRouter`] subscribes to
//! the feed **once** per [`MorenaContext`](crate::context::MorenaContext)
//! and fans each [`NfcEvent`] out to registered filter closures on a
//! single dispatcher thread (`morena-router`), preserving the feed's
//! event order per registration.
//!
//! Registrations are owned by [`RouteGuard`]s: dropping the guard (or a
//! reference calling `close()`) unregisters the route, so routes cannot
//! outlive the object they notify.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use crossbeam::channel::RecvTimeoutError;
use morena_nfc_sim::controller::NfcHandle;
use morena_nfc_sim::world::NfcEvent;
use morena_obs::MemFootprint;
use parking_lot::Mutex;

type RouteFn = Arc<dyn Fn(&NfcEvent) + Send + Sync>;

struct RouterInner {
    routes: Mutex<Vec<(u64, RouteFn)>>,
    next_id: AtomicU64,
}

/// The per-context event dispatcher. Cloning the context shares it; the
/// dispatcher thread exits once every clone is gone.
pub(crate) struct EventRouter {
    inner: Arc<RouterInner>,
}

impl std::fmt::Debug for EventRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRouter").field("routes", &self.inner.routes.lock().len()).finish()
    }
}

impl MemFootprint for EventRouter {
    fn mem_bytes(&self) -> u64 {
        // Route closures are opaque `Arc<dyn Fn>`s; their environments
        // (typically a channel sender plus a uid) are attributed as the
        // slot's fat pointer only — best-effort, per the trait contract.
        let slots = self.inner.routes.lock().capacity() as u64;
        std::mem::size_of::<RouterInner>() as u64
            + slots * std::mem::size_of::<(u64, RouteFn)>() as u64
    }
}

impl EventRouter {
    /// Subscribes to `nfc`'s event feed and starts the dispatcher thread.
    pub(crate) fn spawn(nfc: &NfcHandle) -> EventRouter {
        let events = nfc.events();
        let inner =
            Arc::new(RouterInner { routes: Mutex::new(Vec::new()), next_id: AtomicU64::new(0) });
        // The thread holds only a weak handle: when the last context
        // clone (and every route guard) is gone, it winds down on its
        // next timeout tick instead of keeping the router alive forever.
        let weak = Arc::downgrade(&inner);
        std::thread::Builder::new()
            .name("morena-router".into())
            .spawn(move || loop {
                match events.recv_timeout(Duration::from_millis(20)) {
                    Ok(event) => {
                        let Some(inner) = weak.upgrade() else { return };
                        // Snapshot outside the lock: a route may drop the
                        // last handle to another reference mid-dispatch,
                        // whose guard would then re-enter `routes`.
                        let routes: Vec<RouteFn> =
                            inner.routes.lock().iter().map(|(_, f)| Arc::clone(f)).collect();
                        drop(inner);
                        for route in routes {
                            route(&event);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if weak.strong_count() == 0 {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            })
            .expect("spawn event router");
        EventRouter { inner }
    }

    /// Registers a filter closure; it runs on the dispatcher thread for
    /// every controller event until the returned guard is dropped.
    pub(crate) fn register(&self, route: impl Fn(&NfcEvent) + Send + Sync + 'static) -> RouteGuard {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.routes.lock().push((id, Arc::new(route)));
        RouteGuard { id, router: Arc::downgrade(&self.inner) }
    }
}

/// Ownership of one route registration; dropping it unregisters.
pub(crate) struct RouteGuard {
    id: u64,
    router: Weak<RouterInner>,
}

impl std::fmt::Debug for RouteGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteGuard").field("id", &self.id).finish()
    }
}

impl Drop for RouteGuard {
    fn drop(&mut self) {
        if let Some(router) = self.router.upgrade() {
            // Take the route out under the lock but drop its closure
            // after releasing it: the closure may own references whose
            // teardown unregisters *their* routes on this same router
            // (e.g. an inbox listener holding a `PeerReference`), and
            // the mutex is not reentrant.
            let removed: Vec<_> = {
                let mut routes = router.routes.lock();
                let mut kept = Vec::with_capacity(routes.len().saturating_sub(1));
                let mut removed = Vec::new();
                for entry in routes.drain(..) {
                    if entry.0 == self.id {
                        removed.push(entry);
                    } else {
                        kept.push(entry);
                    }
                }
                *routes = kept;
                removed
            };
            drop(removed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::{TagUid, Type2Tag};
    use morena_nfc_sim::world::World;

    #[test]
    fn routes_receive_events_until_their_guard_drops() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
        let phone = world.add_phone("alice");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        let nfc = NfcHandle::new(world.clone(), phone);
        let router = EventRouter::spawn(&nfc);

        let (tx, rx) = crossbeam::channel::unbounded();
        let guard = router.register(move |event| {
            if let NfcEvent::TagEntered { uid, .. } = event {
                tx.send(*uid).unwrap();
            }
        });
        world.tap_tag(uid, phone);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), uid);

        world.remove_tag_from_field(uid);
        drop(guard);
        world.tap_tag(uid, phone);
        assert!(rx.recv_timeout(Duration::from_millis(120)).is_err(), "route unregistered");
    }

    /// A route closure may own the guard of *another* route on the same
    /// router (an inbox listener holding a peer reference does exactly
    /// this). Unregistering the outer route then unregisters the inner
    /// one mid-drop — which must not re-enter the routes lock.
    #[test]
    fn dropping_a_route_that_owns_another_route_does_not_deadlock() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
        let phone = world.add_phone("alice");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(3))));
        let nfc = NfcHandle::new(world.clone(), phone);
        let router = EventRouter::spawn(&nfc);

        let inner = router.register(|_| {});
        let outer = router.register(move |_| {
            let _keepalive = &inner;
        });
        drop(outer); // cascades into dropping `inner` under the same router

        // Both routes are gone and the router still dispatches.
        let (tx, rx) = crossbeam::channel::unbounded();
        let _live = router.register(move |event| {
            if matches!(event, NfcEvent::TagEntered { .. }) {
                tx.send(()).unwrap();
            }
        });
        world.tap_tag(uid, phone);
        rx.recv_timeout(Duration::from_secs(5)).expect("router must keep dispatching");
    }

    #[test]
    fn mem_footprint_tracks_route_slots() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
        let phone = world.add_phone("alice");
        let nfc = NfcHandle::new(world.clone(), phone);
        let router = EventRouter::spawn(&nfc);
        let empty = router.mem_bytes();
        assert!(empty >= std::mem::size_of::<RouterInner>() as u64);
        let guards: Vec<_> = (0..32).map(|_| router.register(|_| {})).collect();
        assert!(router.mem_bytes() > empty, "32 routes must enlarge the table");
        drop(guards);
    }

    #[test]
    fn routes_fan_out_to_every_registration_in_order() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
        let phone = world.add_phone("alice");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(2))));
        let nfc = NfcHandle::new(world.clone(), phone);
        let router = EventRouter::spawn(&nfc);

        let (tx, rx) = crossbeam::channel::unbounded();
        let tx2 = tx.clone();
        let _a = router.register(move |event| {
            if matches!(event, NfcEvent::TagEntered { .. }) {
                tx.send("a").unwrap();
            }
        });
        let _b = router.register(move |event| {
            if matches!(event, NfcEvent::TagEntered { .. }) {
                tx2.send("b").unwrap();
            }
        });
        world.tap_tag(uid, phone);
        let first = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let second = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((first, second), ("a", "b"), "dispatch follows registration order");
    }
}
