//! Leasing (§6 of the paper — proposed as future work, implemented
//! here): exclusive, time-bounded access to a tag's memory.
//!
//! The mechanism is the one the paper sketches: *"write a locking
//! timestamp and a device ID on the RFID tag's memory […] Only if this
//! succeeds, the device is granted exclusive access. The timestamp
//! dictates for how long […] Beyond this timestamp, the lease expires"*,
//! under the stated assumption that clock drift between devices is
//! negligible (in the simulation, all devices literally share a clock).
//!
//! The lock lives in an NFC Forum external-type record
//! (`morena.example:lease`) prepended to the tag's NDEF message, so
//! leased tags remain well-formed NDEF and unleased readers simply see
//! one extra record. On top of the paper's sketch, [`LeaseManager`]
//! performs a **write-then-verify** round: after writing its lock record
//! the device reads the tag back and only claims the lease if its own
//! lock survived — closing most of the window in which two devices could
//! both believe they hold the tag.

use std::collections::HashMap;
use std::time::Duration;

use morena_ndef::{NdefMessage, NdefRecord, Tnf};
use morena_nfc_sim::clock::{Clock, SimInstant};
use morena_nfc_sim::controller::NfcHandle;
use morena_nfc_sim::error::NfcOpError;
use morena_nfc_sim::tag::TagUid;
use morena_obs::inspect::{ComponentSnapshot, LeaseSnapshot, SnapshotProvider};
use morena_obs::{trace, EventKind, LeaseAction, MemFootprint, Recorder, SampleRate, TraceContext};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::context::MorenaContext;

/// The external record type carrying the lock (domain:type form).
pub const LEASE_RECORD_TYPE: &str = "morena.example:lease";

/// A device's identity for locking purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u64);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device-{}", self.0)
    }
}

/// The lock record stored on a tag: who holds it and until when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseRecord {
    /// The device holding the lease.
    pub holder: DeviceId,
    /// Expiry instant (shared simulation clock).
    pub expires_at: SimInstant,
}

impl LeaseRecord {
    /// Whether the lease is still in force at `now`.
    pub fn is_valid(&self, now: SimInstant) -> bool {
        now < self.expires_at
    }

    /// Encodes as the external NDEF record.
    pub fn to_record(&self) -> NdefRecord {
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&self.holder.0.to_be_bytes());
        payload.extend_from_slice(&self.expires_at.as_nanos().to_be_bytes());
        NdefRecord::external(LEASE_RECORD_TYPE, payload).expect("lease record within limits")
    }

    /// Decodes from an NDEF record, if it is a lease record.
    pub fn from_record(record: &NdefRecord) -> Option<LeaseRecord> {
        if record.tnf() != Tnf::External || record.record_type() != LEASE_RECORD_TYPE.as_bytes() {
            return None;
        }
        let payload = record.payload();
        if payload.len() != 16 {
            return None;
        }
        let holder = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
        let expires = u64::from_be_bytes(payload[8..].try_into().expect("8 bytes"));
        Some(LeaseRecord { holder: DeviceId(holder), expires_at: SimInstant::from_nanos(expires) })
    }

    /// Finds the lease record in a message, if present.
    pub fn find_in(message: &NdefMessage) -> Option<LeaseRecord> {
        message.iter().find_map(LeaseRecord::from_record)
    }
}

/// Removes any lease record from `message`, returning the bare
/// application content.
pub fn strip_lease(message: &NdefMessage) -> NdefMessage {
    let records: Vec<NdefRecord> =
        message.iter().filter(|r| LeaseRecord::from_record(r).is_none()).cloned().collect();
    NdefMessage::new(records)
}

/// Prepends `lease` to the application content of `message` (replacing
/// any previous lease record).
pub fn with_lease(message: &NdefMessage, lease: LeaseRecord) -> NdefMessage {
    let mut records = vec![lease.to_record()];
    for record in strip_lease(message).records() {
        if !record.is_empty_record() {
            records.push(record.clone());
        }
    }
    NdefMessage::new(records)
}

/// A successfully acquired lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The leased tag.
    pub uid: TagUid,
    /// Who holds it (this manager's device).
    pub holder: DeviceId,
    /// When it lapses.
    pub expires_at: SimInstant,
}

/// Why a lease operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LeaseError {
    /// Another device holds a still-valid lease.
    Held {
        /// The current holder.
        holder: DeviceId,
        /// When its lease lapses.
        expires_at: SimInstant,
    },
    /// The verify read found a competing lock: a concurrent device won
    /// the race. The caller may simply retry after a backoff.
    LostRace {
        /// Who won instead.
        winner: DeviceId,
    },
    /// Releasing or renewing a lease this device does not hold.
    NotHolder,
    /// The underlying NFC operation failed.
    Nfc(NfcOpError),
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::Held { holder, expires_at } => {
                write!(f, "tag is leased by {holder} until {expires_at}")
            }
            LeaseError::LostRace { winner } => {
                write!(f, "lost the lock race to {winner}")
            }
            LeaseError::NotHolder => write!(f, "this device does not hold the lease"),
            LeaseError::Nfc(e) => write!(f, "nfc failure during lease operation: {e}"),
        }
    }
}

impl std::error::Error for LeaseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LeaseError::Nfc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NfcOpError> for LeaseError {
    fn from(e: NfcOpError) -> LeaseError {
        LeaseError::Nfc(e)
    }
}

/// Acquires, renews, and releases tag leases for one device.
///
/// Operations are blocking (like the raw NDEF operations they are built
/// from) and meant to run from worker threads or inside asynchronous
/// operations' attempt paths.
#[derive(Debug, Clone)]
pub struct LeaseManager {
    nfc: NfcHandle,
    clock: Arc<dyn Clock>,
    device: DeviceId,
    ledger: Arc<LeaseLedger>,
    /// The TTL used when the caller does not pick one — snapshotted from
    /// the context's [`Policy::lease_ttl`](crate::policy::Policy) at
    /// construction.
    default_ttl: Duration,
    /// Head-based trace sampling for acquire roots — snapshotted from
    /// the context's [`Policy::trace_sample`](crate::policy::Policy).
    trace_sample: SampleRate,
}

/// This device's view of the leases it believes it holds — kept for the
/// inspector; the tag's on-memory lock record stays authoritative.
#[derive(Debug)]
struct LeaseLedger {
    device: DeviceId,
    held: Mutex<HashMap<TagUid, SimInstant>>,
}

impl MemFootprint for LeaseLedger {
    fn mem_bytes(&self) -> u64 {
        let entries = self.held.lock().capacity() as u64;
        std::mem::size_of::<Self>() as u64
            + entries * std::mem::size_of::<(TagUid, SimInstant)>() as u64
    }
}

impl SnapshotProvider for LeaseLedger {
    fn snapshot(&self, now_nanos: u64) -> ComponentSnapshot {
        let mut held: Vec<(String, u64)> = {
            let mut map = self.held.lock();
            // Leases lapse by the clock alone; drop expired entries here
            // rather than waiting for an explicit release.
            map.retain(|_, expires| expires.as_nanos() > now_nanos);
            map.iter().map(|(uid, expires)| (uid.to_string(), expires.as_nanos())).collect()
        };
        held.sort();
        ComponentSnapshot::Leases(LeaseSnapshot {
            device: self.device.to_string(),
            held,
            mem_bytes: self.mem_bytes(),
        })
    }
}

impl LeaseManager {
    /// Creates a manager identified by the context's phone id. The
    /// context's default [`Policy::lease_ttl`](crate::policy::Policy)
    /// becomes this manager's default duration.
    pub fn new(ctx: &MorenaContext) -> LeaseManager {
        let device = DeviceId(ctx.phone().as_u64());
        let ledger = Arc::new(LeaseLedger { device, held: Mutex::new(HashMap::new()) });
        ctx.nfc().world().obs().inspector().register(
            format!("leases-{device}"),
            Arc::downgrade(&ledger) as std::sync::Weak<dyn SnapshotProvider>,
        );
        let policy = ctx.default_policy();
        LeaseManager {
            nfc: ctx.nfc().clone(),
            clock: Arc::clone(ctx.clock()),
            device,
            ledger,
            default_ttl: policy.lease_ttl,
            trace_sample: policy.trace_sample,
        }
    }

    /// This manager's device identity.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The TTL [`acquire_default`](LeaseManager::acquire_default) uses,
    /// as inherited from the context policy at construction.
    pub fn default_ttl(&self) -> Duration {
        self.default_ttl
    }

    /// [`acquire`](LeaseManager::acquire) with the policy-provided
    /// default TTL.
    ///
    /// # Errors
    ///
    /// Same as [`acquire`](LeaseManager::acquire).
    pub fn acquire_default(&self, uid: TagUid) -> Result<Lease, LeaseError> {
        self.acquire(uid, self.default_ttl)
    }

    fn read_message(&self, uid: TagUid) -> Result<NdefMessage, LeaseError> {
        let bytes = self.nfc.ndef_read(uid).map_err(LeaseError::Nfc)?;
        if bytes.is_empty() {
            return Ok(NdefMessage::empty_tag());
        }
        // A tag torn by an interrupted write parses as garbage. Treating
        // that as fatal would leave the tag permanently unacquirable
        // (nobody could ever write the repairing message), so corrupt
        // content reads as "blank, no valid lease" — the next acquire's
        // write repairs the tag. The application payload was already
        // lost to the torn write.
        Ok(NdefMessage::parse(&bytes).unwrap_or_else(|_| NdefMessage::empty_tag()))
    }

    fn write_message(&self, uid: TagUid, message: &NdefMessage) -> Result<(), LeaseError> {
        self.nfc.ndef_write(uid, &message.to_bytes()).map_err(LeaseError::Nfc)
    }

    /// Records a lease transition in the world's observability stream.
    fn observe(&self, uid: TagUid, action: LeaseAction, expires_at: Option<SimInstant>) {
        match action {
            LeaseAction::Granted | LeaseAction::Renewed => {
                if let Some(expires) = expires_at {
                    self.ledger.held.lock().insert(uid, expires);
                }
            }
            LeaseAction::Released => {
                self.ledger.held.lock().remove(&uid);
            }
            LeaseAction::Denied | LeaseAction::LostRace => {}
        }
        let recorder = self.nfc.world().obs();
        let counter = match action {
            LeaseAction::Granted => "lease.granted",
            LeaseAction::Renewed => "lease.renewed",
            LeaseAction::Released => "lease.released",
            LeaseAction::Denied => "lease.denied",
            LeaseAction::LostRace => "lease.lost_race",
        };
        recorder.metrics().counter(counter).inc();
        if recorder.is_enabled() {
            recorder.emit(
                self.clock.now().as_nanos(),
                EventKind::Lease {
                    phone: self.device.0,
                    target: uid.to_string(),
                    action,
                    expires_nanos: expires_at.map(SimInstant::as_nanos).unwrap_or(0),
                },
            );
        }
    }

    /// The lease currently on the tag, if any (valid or expired).
    ///
    /// # Errors
    ///
    /// [`LeaseError::Nfc`] when the tag cannot be read.
    pub fn inspect(&self, uid: TagUid) -> Result<Option<LeaseRecord>, LeaseError> {
        Ok(LeaseRecord::find_in(&self.read_message(uid)?))
    }

    /// Attempts to acquire an exclusive lease on `uid` for `ttl`.
    ///
    /// # Errors
    ///
    /// * [`LeaseError::Held`] — a different device holds a valid lease.
    /// * [`LeaseError::LostRace`] — a concurrent acquirer overwrote our
    ///   lock between write and verify; retry if still wanted.
    /// * [`LeaseError::Nfc`] — the tag could not be read or written.
    pub fn acquire(&self, uid: TagUid, ttl: Duration) -> Result<Lease, LeaseError> {
        let recorder = Arc::clone(self.nfc.world().obs());
        // Acquisition is an application-visible op: inherit the caller's
        // ambient context (a listener chaining lease-after-read) or mint
        // a fresh sampled-or-not root, and hold it as the ambient scope
        // so the whole read→write→verify round — including the Phys*
        // ground truth and the Lease outcome event — is one traced hop.
        let ctx = self.mint_trace(&recorder);
        let _scope = trace::enter(ctx);
        let span = recorder.span("lease.acquire", self.device.0, self.clock.now().as_nanos());
        let result = self.acquire_inner(uid, ttl);
        span.end(self.clock.now().as_nanos());
        match &result {
            Ok(lease) => self.observe(uid, LeaseAction::Granted, Some(lease.expires_at)),
            Err(LeaseError::Held { expires_at, .. }) => {
                self.observe(uid, LeaseAction::Denied, Some(*expires_at));
            }
            Err(LeaseError::LostRace { .. }) => self.observe(uid, LeaseAction::LostRace, None),
            Err(_) => {}
        }
        result
    }

    /// Mints the causal identity of one acquire call — the same rules as
    /// the event loop's submit path (child of ambient, else a fresh root
    /// sampled by policy, else nothing while recording is off).
    fn mint_trace(&self, recorder: &Recorder) -> Option<TraceContext> {
        if let Some(parent) = trace::current() {
            return Some(parent.child(recorder.next_span_id()));
        }
        if !recorder.is_enabled() {
            return None;
        }
        let trace_id = recorder.next_trace_id();
        let span_id = recorder.next_span_id();
        Some(if self.trace_sample.admits(trace_id) {
            TraceContext::root(trace_id, span_id)
        } else {
            TraceContext::unsampled_root(trace_id, span_id)
        })
    }

    fn acquire_inner(&self, uid: TagUid, ttl: Duration) -> Result<Lease, LeaseError> {
        let message = self.read_message(uid)?;
        let now = self.clock.now();
        if let Some(existing) = LeaseRecord::find_in(&message) {
            if existing.is_valid(now) && existing.holder != self.device {
                return Err(LeaseError::Held {
                    holder: existing.holder,
                    expires_at: existing.expires_at,
                });
            }
        }
        let lease = LeaseRecord { holder: self.device, expires_at: now + ttl };
        self.write_message(uid, &with_lease(&message, lease))?;
        // Verify: did our lock survive, or did a concurrent device win?
        let verify = self.read_message(uid)?;
        match LeaseRecord::find_in(&verify) {
            Some(found) if found.holder == self.device => {
                Ok(Lease { uid, holder: self.device, expires_at: found.expires_at })
            }
            Some(found) => Err(LeaseError::LostRace { winner: found.holder }),
            None => Err(LeaseError::Nfc(NfcOpError::Protocol("lease record vanished"))),
        }
    }

    /// Extends a held lease by `ttl` from now.
    ///
    /// # Errors
    ///
    /// [`LeaseError::NotHolder`] when the tag's lock is not ours (expired
    /// and taken, or never held); [`LeaseError::Nfc`] on I/O failure.
    pub fn renew(&self, lease: &Lease, ttl: Duration) -> Result<Lease, LeaseError> {
        let message = self.read_message(lease.uid)?;
        match LeaseRecord::find_in(&message) {
            Some(found) if found.holder == self.device => {
                let renewed =
                    LeaseRecord { holder: self.device, expires_at: self.clock.now() + ttl };
                self.write_message(lease.uid, &with_lease(&message, renewed))?;
                self.observe(lease.uid, LeaseAction::Renewed, Some(renewed.expires_at));
                Ok(Lease { uid: lease.uid, holder: self.device, expires_at: renewed.expires_at })
            }
            _ => Err(LeaseError::NotHolder),
        }
    }

    /// Releases a held lease, removing the lock record from the tag.
    ///
    /// # Errors
    ///
    /// [`LeaseError::NotHolder`] when the tag's lock is not ours;
    /// [`LeaseError::Nfc`] on I/O failure.
    pub fn release(&self, lease: &Lease) -> Result<(), LeaseError> {
        let message = self.read_message(lease.uid)?;
        match LeaseRecord::find_in(&message) {
            Some(found) if found.holder == self.device => {
                self.write_message(lease.uid, &strip_lease(&message))?;
                self.observe(lease.uid, LeaseAction::Released, None);
                Ok(())
            }
            _ => Err(LeaseError::NotHolder),
        }
    }

    /// Runs `body` while holding a lease on `uid`, releasing afterwards
    /// (even when `body` errors, on a best-effort basis).
    ///
    /// # Errors
    ///
    /// Acquisition errors, then any error of `body` itself.
    pub fn with_lease_held<R>(
        &self,
        uid: TagUid,
        ttl: Duration,
        body: impl FnOnce(&Lease) -> Result<R, LeaseError>,
    ) -> Result<R, LeaseError> {
        let lease = self.acquire(uid, ttl)?;
        let result = body(&lease);
        let _ = self.release(&lease);
        result
    }

    /// [`inspect`](LeaseManager::inspect) as a future; see
    /// [`LeaseFuture`] for the execution model.
    pub fn inspect_async(&self, uid: TagUid) -> LeaseFuture<Option<LeaseRecord>> {
        let manager = self.clone();
        LeaseFuture::new(move || manager.inspect(uid))
    }

    /// [`acquire`](LeaseManager::acquire) as a future; see
    /// [`LeaseFuture`] for the execution model.
    pub fn acquire_async(&self, uid: TagUid, ttl: Duration) -> LeaseFuture<Lease> {
        let manager = self.clone();
        LeaseFuture::new(move || manager.acquire(uid, ttl))
    }

    /// [`renew`](LeaseManager::renew) as a future; see [`LeaseFuture`]
    /// for the execution model.
    pub fn renew_async(&self, lease: &Lease, ttl: Duration) -> LeaseFuture<Lease> {
        let manager = self.clone();
        let lease = *lease;
        LeaseFuture::new(move || manager.renew(&lease, ttl))
    }

    /// [`release`](LeaseManager::release) as a future; see
    /// [`LeaseFuture`] for the execution model.
    pub fn release_async(&self, lease: &Lease) -> LeaseFuture<()> {
        let manager = self.clone();
        let lease = *lease;
        LeaseFuture::new(move || manager.release(&lease))
    }
}

/// Future form of a lease operation, completing the `async` surface
/// alongside [`ReadFuture`](crate::tagref::ReadFuture) and friends.
///
/// Lease operations are short, direct write-then-verify rounds on the
/// NFC handle — they have no retry queue to park in, so the future is
/// **eager**: the whole operation runs on the first poll and resolves
/// immediately. Creating it does nothing; dropping it unpolled means the
/// operation never runs.
pub struct LeaseFuture<T> {
    op: Option<Box<dyn FnOnce() -> Result<T, LeaseError> + Send>>,
}

impl<T> LeaseFuture<T> {
    fn new(op: impl FnOnce() -> Result<T, LeaseError> + Send + 'static) -> LeaseFuture<T> {
        LeaseFuture { op: Some(Box::new(op)) }
    }
}

impl<T> std::fmt::Debug for LeaseFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaseFuture").field("pending", &self.op.is_some()).finish()
    }
}

impl<T> Unpin for LeaseFuture<T> {}

impl<T> std::future::Future for LeaseFuture<T> {
    type Output = Result<T, LeaseError>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        let op = self.get_mut().op.take().expect("LeaseFuture polled after completion");
        std::task::Poll::Ready(op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::Type2Tag;
    use morena_nfc_sim::world::World;

    fn setup() -> (World, Arc<VirtualClock>, MorenaContext, MorenaContext, TagUid) {
        let clock = VirtualClock::shared();
        let world =
            World::with_link(Arc::clone(&clock) as Arc<dyn Clock>, LinkModel::instant(), 31);
        let alice = world.add_phone("alice");
        let bob = world.add_phone("bob");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        let actx = MorenaContext::headless(&world, alice);
        let bctx = MorenaContext::headless(&world, bob);
        (world, clock, actx, bctx, uid)
    }

    #[test]
    fn record_round_trips_through_ndef() {
        let lease =
            LeaseRecord { holder: DeviceId(42), expires_at: SimInstant::from_nanos(123_456_789) };
        let record = lease.to_record();
        assert_eq!(LeaseRecord::from_record(&record), Some(lease));
        // Not a lease: other records decode to None.
        let other = NdefRecord::mime("a/b", vec![1]).unwrap();
        assert_eq!(LeaseRecord::from_record(&other), None);
        let bad_len = NdefRecord::external(LEASE_RECORD_TYPE, vec![0; 5]).unwrap();
        assert_eq!(LeaseRecord::from_record(&bad_len), None);
    }

    #[test]
    fn with_lease_and_strip_preserve_content() {
        let content = NdefMessage::single(NdefRecord::mime("a/b", b"data".to_vec()).unwrap());
        let lease = LeaseRecord { holder: DeviceId(1), expires_at: SimInstant::from_nanos(10) };
        let locked = with_lease(&content, lease);
        assert_eq!(locked.records().len(), 2);
        assert_eq!(LeaseRecord::find_in(&locked), Some(lease));
        let stripped = strip_lease(&locked);
        assert_eq!(stripped, content);
        // Re-locking replaces, not duplicates.
        let relocked = with_lease(
            &locked,
            LeaseRecord { holder: DeviceId(2), expires_at: SimInstant::from_nanos(20) },
        );
        assert_eq!(relocked.records().len(), 2);
        assert_eq!(LeaseRecord::find_in(&relocked).unwrap().holder, DeviceId(2));
    }

    #[test]
    fn acquire_grants_and_blocks_contender() {
        let (world, _clock, actx, bctx, uid) = setup();
        world.tap_tag(uid, actx.phone());
        // Keep the tag reachable from bob too: both phones share position.
        world.set_phone_position(bctx.phone(), world_position(&world, actx.phone()));

        let alice = LeaseManager::new(&actx);
        let bob = LeaseManager::new(&bctx);
        let lease = alice.acquire(uid, Duration::from_secs(10)).unwrap();
        assert_eq!(lease.holder, alice.device());

        match bob.acquire(uid, Duration::from_secs(10)) {
            Err(LeaseError::Held { holder, .. }) => assert_eq!(holder, alice.device()),
            other => panic!("expected Held, got {other:?}"),
        }
        // Alice can re-acquire (extend) her own lease.
        let again = alice.acquire(uid, Duration::from_secs(20)).unwrap();
        assert!(again.expires_at > lease.expires_at);
    }

    fn world_position(
        _world: &World,
        phone: morena_nfc_sim::world::PhoneId,
    ) -> morena_nfc_sim::geometry::Point {
        // Phones are placed at x = 1000 * (id + 1).
        morena_nfc_sim::geometry::Point::new(1000.0 * (phone.as_u64() as f64 + 1.0), 0.0)
    }

    #[test]
    fn expired_lease_can_be_taken_over() {
        let (world, clock, actx, bctx, uid) = setup();
        world.tap_tag(uid, actx.phone());
        world.set_phone_position(bctx.phone(), world_position(&world, actx.phone()));

        let alice = LeaseManager::new(&actx);
        let bob = LeaseManager::new(&bctx);
        alice.acquire(uid, Duration::from_secs(5)).unwrap();
        clock.advance(Duration::from_secs(6));
        let lease = bob.acquire(uid, Duration::from_secs(5)).unwrap();
        assert_eq!(lease.holder, bob.device());
    }

    #[test]
    fn release_frees_the_tag_and_requires_holding() {
        let (world, _clock, actx, bctx, uid) = setup();
        world.tap_tag(uid, actx.phone());
        world.set_phone_position(bctx.phone(), world_position(&world, actx.phone()));

        let alice = LeaseManager::new(&actx);
        let bob = LeaseManager::new(&bctx);
        let lease = alice.acquire(uid, Duration::from_secs(100)).unwrap();
        assert!(matches!(bob.release(&lease), Err(LeaseError::NotHolder)));
        alice.release(&lease).unwrap();
        assert_eq!(alice.inspect(uid).unwrap(), None);
        let lease = bob.acquire(uid, Duration::from_secs(1)).unwrap();
        assert_eq!(lease.holder, bob.device());
    }

    #[test]
    fn renew_extends_only_for_holder() {
        let (world, clock, actx, bctx, uid) = setup();
        world.tap_tag(uid, actx.phone());
        world.set_phone_position(bctx.phone(), world_position(&world, actx.phone()));

        let alice = LeaseManager::new(&actx);
        let bob = LeaseManager::new(&bctx);
        let lease = alice.acquire(uid, Duration::from_secs(5)).unwrap();
        let renewed = alice.renew(&lease, Duration::from_secs(50)).unwrap();
        assert!(renewed.expires_at > lease.expires_at);
        assert!(matches!(bob.renew(&renewed, Duration::from_secs(1)), Err(LeaseError::NotHolder)));
        // After expiry, renewing fails even for the original holder once
        // someone else takes over.
        clock.advance(Duration::from_secs(60));
        bob.acquire(uid, Duration::from_secs(5)).unwrap();
        assert!(matches!(
            alice.renew(&renewed, Duration::from_secs(1)),
            Err(LeaseError::NotHolder)
        ));
    }

    #[test]
    fn lease_preserves_application_content() {
        let (world, _clock, actx, _bctx, uid) = setup();
        world.tap_tag(uid, actx.phone());
        let content = NdefMessage::single(NdefRecord::mime("a/b", b"keep me".to_vec()).unwrap());
        actx.nfc().ndef_write(uid, &content.to_bytes()).unwrap();

        let alice = LeaseManager::new(&actx);
        let lease = alice.acquire(uid, Duration::from_secs(5)).unwrap();
        let bytes = actx.nfc().ndef_read(uid).unwrap();
        let on_tag = NdefMessage::parse(&bytes).unwrap();
        assert_eq!(on_tag.records().len(), 2);
        assert_eq!(strip_lease(&on_tag), content);

        alice.release(&lease).unwrap();
        let bytes = actx.nfc().ndef_read(uid).unwrap();
        assert_eq!(NdefMessage::parse(&bytes).unwrap(), content);
    }

    #[test]
    fn with_lease_held_releases_after_body() {
        let (world, _clock, actx, _bctx, uid) = setup();
        world.tap_tag(uid, actx.phone());
        let alice = LeaseManager::new(&actx);
        let out = alice
            .with_lease_held(uid, Duration::from_secs(5), |lease| {
                assert_eq!(lease.holder, alice.device());
                Ok(7)
            })
            .unwrap();
        assert_eq!(out, 7);
        assert_eq!(alice.inspect(uid).unwrap(), None);
    }

    #[test]
    fn torn_tag_content_reads_as_unleased_and_is_repaired_by_acquire() {
        let (world, _clock, actx, _bctx, uid) = setup();
        world.tap_tag(uid, actx.phone());
        // Corrupt the tag the way a torn write does: raw garbage bytes.
        actx.nfc().ndef_write(uid, &[0xFF, 0x13, 0x37]).unwrap();
        let alice = LeaseManager::new(&actx);
        assert_eq!(alice.inspect(uid).unwrap(), None, "garbage is not a lease");
        // Acquire repairs the tag: afterwards it parses cleanly again.
        let lease = alice.acquire(uid, Duration::from_secs(5)).unwrap();
        let bytes = actx.nfc().ndef_read(uid).unwrap();
        assert!(NdefMessage::parse(&bytes).is_ok(), "acquire repaired the torn tag");
        alice.release(&lease).unwrap();
        let bytes = actx.nfc().ndef_read(uid).unwrap();
        assert!(NdefMessage::parse(&bytes).unwrap().is_blank());
    }

    #[test]
    fn out_of_range_tag_yields_nfc_error() {
        let (_world, _clock, actx, _bctx, uid) = setup();
        let alice = LeaseManager::new(&actx);
        assert!(matches!(alice.acquire(uid, Duration::from_secs(1)), Err(LeaseError::Nfc(_))));
    }

    #[test]
    fn error_displays_are_nonempty() {
        for e in [
            LeaseError::Held { holder: DeviceId(1), expires_at: SimInstant::EPOCH },
            LeaseError::LostRace { winner: DeviceId(2) },
            LeaseError::NotHolder,
            LeaseError::Nfc(NfcOpError::NotNdef),
        ] {
            assert!(!e.to_string().is_empty());
        }
        assert_eq!(DeviceId(3).to_string(), "device-3");
    }
}
