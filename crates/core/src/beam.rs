//! Beam: asynchronous phone-to-phone NFC push (§2.5 and §3.3 of the
//! paper).
//!
//! Android's Beam API shares all the drawbacks of its tag API —
//! synchronous, coupled in time, manual conversion, activity-bound.
//! MORENA wraps it in the same machinery as tag references:
//!
//! * a [`Beamer`] queues outgoing pushes in its own event loop and
//!   delivers them when (and only when) a peer phone is in proximity —
//!   *"beaming is an undirected operation that broadcasts a message to
//!   any device willing to accept the beamed data"*;
//! * a [`BeamReceiver`] converts incoming pushes with its read converter
//!   and invokes a typed [`BeamListener`] on the main thread, with the
//!   §3.4 `check_condition` predicate applied first.

use std::sync::Arc;
use std::time::Duration;

use morena_ndef::NdefMessage;
use morena_nfc_sim::controller::NfcHandle;
use morena_nfc_sim::error::NfcOpError;
use morena_nfc_sim::world::NfcEvent;
use morena_obs::{trace, EventKind, MemFootprint};
use parking_lot::Mutex;

use crate::context::MorenaContext;
use crate::convert::TagDataConverter;
use crate::eventloop::{
    EventLoop, ObsScope, OpExecutor, OpFailure, OpRequest, OpResponse, OpStats,
};
use crate::future::UnitFuture;
use crate::policy::Policy;
use crate::router::RouteGuard;
use crate::tracewire;

struct BeamExecutor {
    nfc: NfcHandle,
}

impl OpExecutor for BeamExecutor {
    fn connected(&self) -> bool {
        !self.nfc.peers_in_range().is_empty()
    }

    fn execute(&self, request: &OpRequest) -> Result<OpResponse, NfcOpError> {
        match request {
            OpRequest::Push(bytes) => {
                // The poll loop runs this under the op's ambient trace
                // scope; a sampled context rides the payload in-band so
                // the receiving phone's handler joins the trace.
                let stamped = tracewire::stamp_outgoing(bytes);
                let payload = stamped.as_deref().unwrap_or(bytes);
                self.nfc.beam(payload).map(|_| OpResponse::Done).map_err(NfcOpError::Link)
            }
            _ => Err(NfcOpError::Protocol("beamer only pushes")),
        }
    }
}

struct BeamerInner<C: TagDataConverter> {
    ctx: MorenaContext,
    converter: Arc<C>,
    event_loop: EventLoop,
    route: Mutex<Option<RouteGuard>>,
}

impl<C: TagDataConverter> Drop for BeamerInner<C> {
    fn drop(&mut self) {
        self.event_loop.stop();
    }
}

/// Queues values to be pushed to whatever peer phone comes into
/// proximity, with success/failure listeners and timeouts — the paper's
/// `Beamer` object.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use morena_core::beam::Beamer;
/// use morena_core::context::MorenaContext;
/// use morena_core::convert::StringConverter;
/// use morena_nfc_sim::clock::VirtualClock;
/// use morena_nfc_sim::link::LinkModel;
/// use morena_nfc_sim::world::World;
///
/// let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
/// let alice = world.add_phone("alice");
/// let ctx = MorenaContext::headless(&world, alice);
/// let beamer = Beamer::new(&ctx, Arc::new(StringConverter::plain_text()));
/// // Queue a push now; it is delivered when a peer phone shows up.
/// beamer.beam("shared secret".to_string(), || {}, |_| {});
/// assert_eq!(beamer.queue_len(), 1);
/// ```
pub struct Beamer<C: TagDataConverter> {
    inner: Arc<BeamerInner<C>>,
}

impl<C: TagDataConverter> Clone for Beamer<C> {
    fn clone(&self) -> Beamer<C> {
        Beamer { inner: Arc::clone(&self.inner) }
    }
}

impl<C: TagDataConverter> MemFootprint for Beamer<C> {
    fn mem_bytes(&self) -> u64 {
        std::mem::size_of::<BeamerInner<C>>() as u64 + self.inner.event_loop.mem_bytes()
    }
}

impl<C: TagDataConverter> std::fmt::Debug for Beamer<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Beamer")
            .field("mime", &self.inner.converter.mime_type())
            .field("queued", &self.queue_len())
            .finish()
    }
}

impl<C: TagDataConverter> Beamer<C> {
    /// Creates a beamer inheriting the context's default [`Policy`].
    pub fn new(ctx: &MorenaContext, converter: Arc<C>) -> Beamer<C> {
        Beamer::with_policy(ctx, converter, ctx.default_policy())
    }

    /// Creates a beamer pinned to an explicit distribution [`Policy`].
    pub fn with_policy(ctx: &MorenaContext, converter: Arc<C>, policy: Policy) -> Beamer<C> {
        let event_loop = EventLoop::spawn(
            "beamer",
            ctx.execution(),
            Arc::clone(ctx.clock()),
            ctx.handler(),
            policy,
            BeamExecutor { nfc: ctx.nfc().clone() },
            // Beaming is undirected; `*` tells the correlator to count
            // *any* peer in range as reachability for these ops.
            ObsScope::new(ctx, "beamer".into(), "beam", "*".into()),
        );
        // Any peer appearing or leaving may change reachability: poke the
        // loop through the context's shared event router.
        let loop_for_route = event_loop.clone();
        let route = ctx.router().register(move |event| {
            if matches!(event, NfcEvent::PeerEntered { .. } | NfcEvent::PeerLeft { .. }) {
                loop_for_route.wake();
            }
        });
        Beamer {
            inner: Arc::new(BeamerInner {
                ctx: ctx.clone(),
                converter,
                event_loop,
                route: Mutex::new(Some(route)),
            }),
        }
    }

    /// Whether a peer phone is in beam range right now.
    pub fn peer_in_range(&self) -> bool {
        !self.inner.ctx.nfc().peers_in_range().is_empty()
    }

    /// Number of queued pushes.
    pub fn queue_len(&self) -> usize {
        self.inner.event_loop.queue_len()
    }

    /// Lifetime push statistics.
    pub fn stats(&self) -> Arc<OpStats> {
        self.inner.event_loop.stats()
    }

    /// Queues an asynchronous push of `value` with the default timeout.
    ///
    /// `on_success` / `on_failure` run on the main thread, mirroring the
    /// paper's `BeamSuccessListener` / `BeamFailedListener`.
    pub fn beam<F, G>(&self, value: C::Value, on_success: F, on_failure: G)
    where
        F: FnOnce() + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.beam_impl(value, None, on_success, on_failure);
    }

    /// [`beam`](Beamer::beam) with an explicit timeout.
    pub fn beam_with_timeout<F, G>(
        &self,
        value: C::Value,
        timeout: Duration,
        on_success: F,
        on_failure: G,
    ) where
        F: FnOnce() + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.beam_impl(value, Some(timeout), on_success, on_failure);
    }

    /// [`beam`](Beamer::beam) without listeners (fire and forget).
    pub fn beam_ok(&self, value: C::Value) {
        self.beam_impl(value, None, || {}, |_| {});
    }

    fn beam_impl<F, G>(
        &self,
        value: C::Value,
        timeout: Option<Duration>,
        on_success: F,
        on_failure: G,
    ) where
        F: FnOnce() + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        let bytes = match self.inner.converter.to_message(&value) {
            Ok(message) => message.to_bytes(),
            Err(e) => {
                self.inner.ctx.handler().post(move || on_failure(OpFailure::InvalidData(e)));
                return;
            }
        };
        self.inner.event_loop.submit(
            OpRequest::Push(bytes.into()),
            timeout,
            Box::new(move |_| on_success()),
            Box::new(on_failure),
        );
    }

    /// Queues an asynchronous push of `value` and returns a future
    /// resolving once it lands on a peer. Conversion failures resolve
    /// the future with [`OpFailure::InvalidData`]; dropping it before
    /// completion withdraws the push.
    pub fn beam_async(&self, value: C::Value) -> UnitFuture {
        self.beam_async_with_timeout_opt(value, None)
    }

    /// [`beam_async`](Beamer::beam_async) with an explicit timeout.
    pub fn beam_async_with_timeout(&self, value: C::Value, timeout: Duration) -> UnitFuture {
        self.beam_async_with_timeout_opt(value, Some(timeout))
    }

    fn beam_async_with_timeout_opt(
        &self,
        value: C::Value,
        timeout: Option<Duration>,
    ) -> UnitFuture {
        let bytes = match self.inner.converter.to_message(&value) {
            Ok(message) => message.to_bytes(),
            Err(e) => return UnitFuture::failed(OpFailure::InvalidData(e)),
        };
        UnitFuture::queued(
            self.inner.event_loop.submit_future(OpRequest::Push(bytes.into()), timeout),
        )
    }

    /// Stops the beamer; queued pushes fail with [`OpFailure::Cancelled`].
    pub fn close(&self) {
        self.inner.route.lock().take();
        self.inner.event_loop.stop();
    }
}

/// Typed reception callbacks for beamed values. Methods run on the main
/// thread.
pub trait BeamListener<C: TagDataConverter>: Send + Sync + 'static {
    /// A value of this receiver's type arrived over Beam.
    fn on_beam_received(&self, value: C::Value);

    /// Fine-grained filter (§3.4) applied before
    /// [`on_beam_received`](BeamListener::on_beam_received).
    fn check_condition(&self, value: &C::Value) -> bool {
        let _ = value;
        true
    }
}

struct ReceiverInner<C: TagDataConverter> {
    converter: Arc<C>,
    route: Mutex<Option<RouteGuard>>,
    // Keeps the delivery main thread alive for the receiver's lifetime
    // (a headless context owns its main thread).
    _ctx: MorenaContext,
}

/// Listens for incoming beamed messages of one data type — the paper's
/// `BeamReceivedListener`, decoupled from the activity.
pub struct BeamReceiver<C: TagDataConverter> {
    inner: Arc<ReceiverInner<C>>,
}

impl<C: TagDataConverter> std::fmt::Debug for BeamReceiver<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BeamReceiver").field("mime", &self.inner.converter.mime_type()).finish()
    }
}

impl<C: TagDataConverter> BeamReceiver<C> {
    /// Starts receiving; messages that match the converter (and pass
    /// `check_condition`) are delivered to `listener` on the main thread.
    pub fn new(
        ctx: &MorenaContext,
        converter: Arc<C>,
        listener: Arc<dyn BeamListener<C>>,
    ) -> BeamReceiver<C> {
        let handler = ctx.handler();
        let recorder = Arc::clone(ctx.nfc().world().obs());
        let clock = Arc::clone(ctx.clock());
        let phone = ctx.phone().as_u64();
        let received_ctr = recorder.metrics().counter("beam.received");
        let route_converter = Arc::clone(&converter);
        let route = ctx.router().register(move |event| {
            let NfcEvent::BeamReceived { from, bytes } = event else { return };
            let Ok(message) = NdefMessage::parse(bytes) else { return };
            // Strip the in-band trace record *before* the converter or
            // the condition sees the message (applications never observe
            // it), minting this phone's hop as a child of the sender's
            // span — same trace_id across both devices.
            let wire_ctx = tracewire::find_trace(&message);
            let message = match wire_ctx {
                Some(_) => tracewire::strip_trace(&message),
                None => message,
            };
            let ctx = wire_ctx.map(|sender| sender.child(recorder.next_span_id()));
            if !route_converter.accepts(&message) {
                return;
            }
            let Ok(value) = route_converter.from_message(&message) else {
                return;
            };
            if !listener.check_condition(&value) {
                return;
            }
            received_ctr.inc();
            if recorder.is_enabled() {
                recorder.emit_traced(
                    clock.now().as_nanos(),
                    ctx,
                    EventKind::BeamReceived {
                        phone,
                        from: from.as_u64(),
                        bytes: bytes.len() as u64,
                    },
                );
            }
            let listener = Arc::clone(&listener);
            // The handler callback runs under the received context, so
            // anything the app does in response — a tag write, a reply
            // beam — continues the sender's trace as a further hop.
            handler.post(move || trace::with(ctx, move || listener.on_beam_received(value)));
        });
        BeamReceiver {
            inner: Arc::new(ReceiverInner {
                converter,
                route: Mutex::new(Some(route)),
                _ctx: ctx.clone(),
            }),
        }
    }

    /// Stops receiving.
    pub fn stop(&self) {
        self.inner.route.lock().take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::StringConverter;
    use crossbeam::channel::{unbounded, Sender};
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::world::World;

    struct Collect {
        tx: Sender<String>,
        condition: Box<dyn Fn(&String) -> bool + Send + Sync>,
    }

    impl BeamListener<StringConverter> for Collect {
        fn on_beam_received(&self, value: String) {
            self.tx.send(value).unwrap();
        }
        fn check_condition(&self, value: &String) -> bool {
            (self.condition)(value)
        }
    }

    fn setup() -> (World, MorenaContext, MorenaContext) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 11);
        let alice = world.add_phone("alice");
        let bob = world.add_phone("bob");
        let actx = MorenaContext::headless(&world, alice);
        let bctx = MorenaContext::headless(&world, bob);
        (world, actx, bctx)
    }

    #[test]
    fn beam_reaches_typed_receiver() {
        let (world, actx, bctx) = setup();
        let (tx, rx) = unbounded();
        let _receiver = BeamReceiver::new(
            &bctx,
            Arc::new(StringConverter::plain_text()),
            Arc::new(Collect { tx, condition: Box::new(|_| true) }),
        );
        let beamer = Beamer::new(&actx, Arc::new(StringConverter::plain_text()));
        world.bring_phones_together(actx.phone(), bctx.phone());

        let (ok_tx, ok_rx) = unbounded();
        beamer.beam(
            "beamed!".to_string(),
            move || ok_tx.send(()).unwrap(),
            |f| panic!("beam failed: {f}"),
        );
        ok_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), "beamed!");
    }

    #[test]
    fn beams_queue_until_a_peer_arrives() {
        let (world, actx, bctx) = setup();
        let beamer = Beamer::new(&actx, Arc::new(StringConverter::plain_text()));
        assert!(!beamer.peer_in_range());

        let (ok_tx, ok_rx) = unbounded();
        for i in 0..3 {
            let ok_tx = ok_tx.clone();
            beamer.beam(format!("m{i}"), move || ok_tx.send(i).unwrap(), |f| panic!("{f}"));
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(beamer.queue_len(), 3, "pushes must wait for a peer");

        let (tx, rx) = unbounded();
        let _receiver = BeamReceiver::new(
            &bctx,
            Arc::new(StringConverter::plain_text()),
            Arc::new(Collect { tx, condition: Box::new(|_| true) }),
        );
        world.bring_phones_together(actx.phone(), bctx.phone());
        let received: Vec<String> =
            (0..3).map(|_| rx.recv_timeout(Duration::from_secs(10)).unwrap()).collect();
        assert_eq!(received, vec!["m0", "m1", "m2"]);
        assert_eq!(ok_rx.iter().take(3).count(), 3);
    }

    #[test]
    fn receiver_filters_by_mime_and_condition() {
        let (world, actx, bctx) = setup();
        let (tx, rx) = unbounded();
        let _receiver = BeamReceiver::new(
            &bctx,
            Arc::new(StringConverter::plain_text()),
            Arc::new(Collect { tx, condition: Box::new(|v| v.starts_with("keep")) }),
        );
        world.bring_phones_together(actx.phone(), bctx.phone());

        // Wrong MIME type: silently ignored by this receiver.
        let other = Beamer::new(&actx, Arc::new(StringConverter::new("application/other")));
        other.beam_ok("keep but wrong type".into());
        // Right type, fails the condition.
        let beamer = Beamer::new(&actx, Arc::new(StringConverter::plain_text()));
        beamer.beam_ok("drop this".into());
        // Right type, passes.
        beamer.beam_ok("keep this".into());

        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), "keep this");
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn stopped_receiver_hears_nothing() {
        let (world, actx, bctx) = setup();
        let (tx, rx) = unbounded();
        let receiver = BeamReceiver::new(
            &bctx,
            Arc::new(StringConverter::plain_text()),
            Arc::new(Collect { tx, condition: Box::new(|_| true) }),
        );
        receiver.stop();
        std::thread::sleep(Duration::from_millis(60));
        world.bring_phones_together(actx.phone(), bctx.phone());
        let beamer = Beamer::new(&actx, Arc::new(StringConverter::plain_text()));
        beamer.beam_ok("into the void".into());
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err());
        assert!(format!("{receiver:?}").contains("BeamReceiver"));
    }

    #[test]
    fn close_cancels_queued_beams() {
        let (_world, actx, _bctx) = setup();
        let beamer = Beamer::new(&actx, Arc::new(StringConverter::plain_text()));
        let (tx, rx) = unbounded();
        beamer.beam("never".into(), || panic!("no"), move |f| tx.send(f).unwrap());
        beamer.close();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), OpFailure::Cancelled);
        assert!(format!("{beamer:?}").contains("Beamer"));
    }
}
