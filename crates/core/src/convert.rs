//! Data converters: the objects that encapsulate how application values
//! are marshalled to and from NDEF messages (§3.2 of the paper,
//! `ObjectToNdefMessageConverter` / `NdefMessageToObjectConverter`).
//!
//! In the raw Android API, conversion code is scattered through the
//! application; MORENA attaches a converter to each tag reference,
//! discoverer, and beamer so that *"given such a tag reference, the
//! programmer must no longer worry about it"*. The [`TagDataConverter`]
//! trait is the Rust shape of that idea: one type implementing both
//! directions for a specific value type.

use std::marker::PhantomData;

use morena_ndef::{NdefError, NdefMessage, NdefRecord};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Failures converting between application values and NDEF messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConvertError {
    /// The message's structure is not what this converter produces
    /// (wrong record type, missing records, …).
    WrongShape {
        /// What the converter expected to find.
        expected: String,
    },
    /// NDEF-level encoding or decoding failed.
    Ndef(NdefError),
    /// JSON (de)serialization failed.
    Json(String),
}

impl std::fmt::Display for ConvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvertError::WrongShape { expected } => {
                write!(f, "message does not match converter, expected {expected}")
            }
            ConvertError::Ndef(e) => write!(f, "ndef error: {e}"),
            ConvertError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for ConvertError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConvertError::Ndef(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NdefError> for ConvertError {
    fn from(e: NdefError) -> ConvertError {
        ConvertError::Ndef(e)
    }
}

/// Two-way conversion between an application value type and NDEF
/// messages, attached to tag references, discoverers, and beamers.
///
/// Implementations must be cheap to call and stateless (they are shared
/// behind `Arc` across the middleware's threads).
pub trait TagDataConverter: Send + Sync + 'static {
    /// The application value type this converter handles.
    type Value: Clone + Send + 'static;

    /// The MIME type of the messages this converter produces — used by
    /// discoverers and beam listeners to filter relevant tags/messages.
    fn mime_type(&self) -> &str;

    /// Converts a value into the NDEF message to store or beam.
    ///
    /// # Errors
    ///
    /// [`ConvertError`] when the value cannot be represented.
    fn to_message(&self, value: &Self::Value) -> Result<NdefMessage, ConvertError>;

    /// Converts a read or received NDEF message back into a value.
    ///
    /// # Errors
    ///
    /// [`ConvertError`] when the message does not match this converter.
    // Named for the paper's `NdefMessageToObjectConverter`; it is a
    // conversion *of the message*, not of self.
    #[allow(clippy::wrong_self_convention)]
    fn from_message(&self, message: &NdefMessage) -> Result<Self::Value, ConvertError>;

    /// Whether `message` looks like something this converter can decode
    /// (default: first record is a MIME record of [`mime_type`]).
    ///
    /// [`mime_type`]: TagDataConverter::mime_type
    fn accepts(&self, message: &NdefMessage) -> bool {
        message.first().is_mime(self.mime_type())
    }
}

/// Converts `String`s to single-record MIME messages — the converter of
/// the paper's simple read/write-a-string application (§3.2).
///
/// # Examples
///
/// ```
/// use morena_core::convert::{StringConverter, TagDataConverter};
///
/// # fn main() -> Result<(), morena_core::convert::ConvertError> {
/// let conv = StringConverter::plain_text();
/// let msg = conv.to_message(&"hello".to_string())?;
/// assert_eq!(conv.from_message(&msg)?, "hello");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StringConverter {
    mime: String,
}

impl StringConverter {
    /// A converter using a custom MIME type.
    pub fn new(mime: &str) -> StringConverter {
        StringConverter { mime: mime.to_owned() }
    }

    /// The conventional `text/plain` converter.
    pub fn plain_text() -> StringConverter {
        StringConverter::new("text/plain")
    }
}

impl TagDataConverter for StringConverter {
    type Value = String;

    fn mime_type(&self) -> &str {
        &self.mime
    }

    fn to_message(&self, value: &String) -> Result<NdefMessage, ConvertError> {
        let record = NdefRecord::mime(&self.mime, value.as_bytes().to_vec())?;
        Ok(NdefMessage::single(record))
    }

    fn from_message(&self, message: &NdefMessage) -> Result<String, ConvertError> {
        let record = message.first();
        if !record.is_mime(&self.mime) {
            return Err(ConvertError::WrongShape { expected: format!("mime {}", self.mime) });
        }
        String::from_utf8(record.payload().to_vec())
            .map_err(|_| ConvertError::WrongShape { expected: "utf-8 text payload".into() })
    }
}

/// Converts raw byte vectors to single-record MIME messages — the
/// lowest-level custom strategy (e.g. storing only a key on the tag and
/// the object in an external database, as §3's intro suggests).
#[derive(Debug, Clone)]
pub struct BytesConverter {
    mime: String,
}

impl BytesConverter {
    /// A converter using a custom MIME type.
    pub fn new(mime: &str) -> BytesConverter {
        BytesConverter { mime: mime.to_owned() }
    }
}

impl TagDataConverter for BytesConverter {
    type Value = Vec<u8>;

    fn mime_type(&self) -> &str {
        &self.mime
    }

    fn to_message(&self, value: &Vec<u8>) -> Result<NdefMessage, ConvertError> {
        Ok(NdefMessage::single(NdefRecord::mime(&self.mime, value.clone())?))
    }

    fn from_message(&self, message: &NdefMessage) -> Result<Vec<u8>, ConvertError> {
        let record = message.first();
        if !record.is_mime(&self.mime) {
            return Err(ConvertError::WrongShape { expected: format!("mime {}", self.mime) });
        }
        Ok(record.payload().to_vec())
    }
}

/// Converts any `serde` value to a JSON payload in a single MIME record —
/// the GSON-based deep serialization that the paper's *things* layer (§2)
/// is built on.
pub struct JsonConverter<T> {
    mime: String,
    _marker: PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for JsonConverter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonConverter").field("mime", &self.mime).finish()
    }
}

impl<T> Clone for JsonConverter<T> {
    fn clone(&self) -> JsonConverter<T> {
        JsonConverter { mime: self.mime.clone(), _marker: PhantomData }
    }
}

impl<T> JsonConverter<T> {
    /// A JSON converter using `mime` as the record type.
    pub fn new(mime: &str) -> JsonConverter<T> {
        JsonConverter { mime: mime.to_owned(), _marker: PhantomData }
    }
}

impl<T> TagDataConverter for JsonConverter<T>
where
    T: Serialize + DeserializeOwned + Clone + Send + 'static,
{
    type Value = T;

    fn mime_type(&self) -> &str {
        &self.mime
    }

    fn to_message(&self, value: &T) -> Result<NdefMessage, ConvertError> {
        let json = serde_json::to_vec(value).map_err(|e| ConvertError::Json(e.to_string()))?;
        Ok(NdefMessage::single(NdefRecord::mime(&self.mime, json)?))
    }

    fn from_message(&self, message: &NdefMessage) -> Result<T, ConvertError> {
        let record = message.first();
        if !record.is_mime(&self.mime) {
            return Err(ConvertError::WrongShape { expected: format!("mime {}", self.mime) });
        }
        serde_json::from_slice(record.payload()).map_err(|e| ConvertError::Json(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[test]
    fn string_converter_round_trips() {
        let conv = StringConverter::plain_text();
        assert_eq!(conv.mime_type(), "text/plain");
        let msg = conv.to_message(&"héllo ✓".to_string()).unwrap();
        assert!(conv.accepts(&msg));
        assert_eq!(conv.from_message(&msg).unwrap(), "héllo ✓");
    }

    #[test]
    fn string_converter_rejects_other_mime() {
        let a = StringConverter::new("text/a");
        let b = StringConverter::new("text/b");
        let msg = a.to_message(&"x".to_string()).unwrap();
        assert!(!b.accepts(&msg));
        assert!(matches!(b.from_message(&msg), Err(ConvertError::WrongShape { .. })));
    }

    #[test]
    fn string_converter_rejects_invalid_utf8() {
        let conv = StringConverter::plain_text();
        let msg = NdefMessage::single(NdefRecord::mime("text/plain", vec![0xFF, 0xFE]).unwrap());
        assert!(matches!(conv.from_message(&msg), Err(ConvertError::WrongShape { .. })));
    }

    #[test]
    fn bytes_converter_round_trips() {
        let conv = BytesConverter::new("application/octet-stream");
        let payload = vec![0u8, 1, 2, 255];
        let msg = conv.to_message(&payload).unwrap();
        assert_eq!(conv.from_message(&msg).unwrap(), payload);
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Config {
        ssid: String,
        key: String,
        channel: u8,
    }

    #[test]
    fn json_converter_round_trips_structs() {
        let conv: JsonConverter<Config> = JsonConverter::new("application/vnd.test+json");
        let value = Config { ssid: "lab".into(), key: "s3cret".into(), channel: 6 };
        let msg = conv.to_message(&value).unwrap();
        assert!(conv.accepts(&msg));
        assert_eq!(conv.from_message(&msg).unwrap(), value);
    }

    #[test]
    fn json_converter_reports_garbage() {
        let conv: JsonConverter<Config> = JsonConverter::new("application/vnd.test+json");
        let msg = NdefMessage::single(
            NdefRecord::mime("application/vnd.test+json", b"{not json".to_vec()).unwrap(),
        );
        assert!(matches!(conv.from_message(&msg), Err(ConvertError::Json(_))));
    }

    #[test]
    fn errors_display_and_chain() {
        let e = ConvertError::from(NdefError::InvalidUtf8);
        assert!(!e.to_string().is_empty());
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ConvertError::Json("x".into())).is_none());
        assert!(!ConvertError::WrongShape { expected: "y".into() }.to_string().is_empty());
    }

    #[test]
    fn json_converter_is_cloneable_and_debuggable() {
        let conv: JsonConverter<Config> = JsonConverter::new("a/b");
        let clone = conv.clone();
        assert_eq!(clone.mime_type(), "a/b");
        assert!(!format!("{conv:?}").is_empty());
    }
}
