//! The declarative distribution-policy layer (RAFDA's thesis applied to
//! MORENA): every tuning knob that is *distribution policy* rather than
//! application logic — retry cadence, deadline budgets, per-operation
//! timeouts, cache staleness, lease durations, discovery cadence, and
//! write coalescing — lifted out of the core's hardcoded constants into
//! one runtime-configurable [`Policy`] object.
//!
//! A policy can be set at three altitudes, most specific wins:
//!
//! * **per context** — [`MorenaContext::set_default_policy`]
//!   (`crate::context::MorenaContext::set_default_policy`) changes the
//!   default every subsequently created reference/discoverer/beamer
//!   inherits;
//! * **per discoverer** — [`TagDiscoverer::with_policy`]
//!   (`crate::discovery::TagDiscoverer::with_policy`) fixes the policy
//!   for every reference that discoverer mints;
//! * **per reference** — [`TagReference::with_policy`]
//!   (`crate::tagref::TagReference::with_policy`) pins one reference.
//!
//! # Backoff curves and the synchronized-retry storm
//!
//! The seed implementation retried every transiently failed operation on
//! a constant 25 ms cadence. In a swarm, one shared fault (an RF drop
//! hitting many loops in the same exchange window) then produces
//! *lock-step* retries: every loop re-attempts at exactly the same
//! instants, the link sees periodic load spikes, and the watchdog's
//! `retry_storm` rule fires on the middleware's own behavior. The
//! default [`Backoff`] is therefore **exponential with jitter**: delays
//! double per consecutive transient failure and each loop draws its own
//! jittered delay from a per-loop deterministic RNG, so recovering loops
//! spread out instead of marching in phase. The constant curve survives
//! as an explicit opt-in, and [`Backoff::DecorrelatedJitter`] implements
//! the AWS "decorrelated jitter" curve for long-tailed contention.
//!
//! # Write coalescing
//!
//! §4 of the paper claims batching "comes for free" because writes queue
//! while the tag is away. Queuing alone only batches *user effort* (one
//! tap flushes everything); the radio still performs one full exchange
//! per queued write. With [`Policy::coalesce_writes`] enabled, queued
//! writes to the same tag region (in this codec, every NDEF write
//! replaces the whole message — one region per tag) collapse at flush
//! time into a single exchange carrying the *last* write's bytes. Every
//! coalesced operation still completes exactly once, in FIFO order, and
//! the final tag content is byte-identical to what the uncoalesced
//! sequence would have left behind. The savings surface as the
//! `coalesce.saved_exchanges` counter.

use std::time::Duration;

use morena_obs::inspect::PolicyInfo;
use morena_obs::OpKind;

pub use morena_obs::SampleRate;

/// How long a loop waits before re-attempting a transiently failed
/// operation (the party is reachable but exchanges keep failing — a
/// connectivity change always re-arms the attempt immediately,
/// regardless of the curve).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Backoff {
    /// The same pause after every failure. This is the seed behavior —
    /// and the synchronized-retry-storm bug when many loops share a
    /// fault; prefer a jittered curve for anything beyond a single
    /// reference.
    Constant(Duration),
    /// Exponential with equal jitter: the cap doubles per consecutive
    /// failure (`base`, `2·base`, `4·base`, … up to `max`) and the
    /// actual delay is drawn uniformly from `[cap/2, cap]`, so no two
    /// loops recovering from one shared fault retry in phase. This is
    /// the default curve.
    Exponential {
        /// First-failure cap (and the floor of every delay's cap).
        base: Duration,
        /// Ceiling the cap saturates at.
        max: Duration,
    },
    /// AWS-style decorrelated jitter: each delay is drawn uniformly from
    /// `[base, 3·previous]` (clamped to `max`), decorrelating consecutive
    /// retries even harder than the exponential curve.
    DecorrelatedJitter {
        /// Minimum delay (and the first draw's lower bound).
        base: Duration,
        /// Ceiling every draw is clamped to.
        max: Duration,
    },
}

impl Backoff {
    /// The constant curve (the paper-era behavior, explicit).
    pub fn constant(delay: Duration) -> Backoff {
        Backoff::Constant(delay)
    }

    /// The default jittered exponential curve with explicit bounds.
    pub fn exponential(base: Duration, max: Duration) -> Backoff {
        Backoff::Exponential { base, max }
    }

    /// The decorrelated-jitter curve with explicit bounds.
    pub fn decorrelated(base: Duration, max: Duration) -> Backoff {
        Backoff::DecorrelatedJitter { base, max }
    }

    /// Compact human label, surfaced in inspector snapshots.
    pub fn label(&self) -> String {
        match self {
            Backoff::Constant(d) => format!("constant({})", fmt_duration(*d)),
            Backoff::Exponential { base, max } => {
                format!("exp-jitter({}..{})", fmt_duration(*base), fmt_duration(*max))
            }
            Backoff::DecorrelatedJitter { base, max } => {
                format!("decorrelated({}..{})", fmt_duration(*base), fmt_duration(*max))
            }
        }
    }

    /// The delay before retry number `streak` (1-based count of
    /// consecutive transient failures of the same head operation),
    /// drawing any jitter from `rng`. `prev` is the previously chosen
    /// delay (the decorrelated curve's state; pass the returned value
    /// back in).
    pub fn delay(&self, streak: u32, prev: Duration, rng: &mut JitterRng) -> Duration {
        match *self {
            Backoff::Constant(d) => d,
            Backoff::Exponential { base, max } => {
                let cap = scale_pow2(base, streak.saturating_sub(1)).min(max).max(base);
                let half = cap / 2;
                half + rng.uniform(cap.saturating_sub(half))
            }
            Backoff::DecorrelatedJitter { base, max } => {
                let prev = prev.max(base);
                let upper = prev.saturating_mul(3).min(max).max(base);
                (base + rng.uniform(upper.saturating_sub(base))).min(max)
            }
        }
    }
}

/// `base · 2^exp`, saturating.
fn scale_pow2(base: Duration, exp: u32) -> Duration {
    let nanos = base.as_nanos() as u64;
    Duration::from_nanos(nanos.saturating_shl(exp.min(32)))
}

trait SaturatingShl {
    fn saturating_shl(self, exp: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, exp: u32) -> u64 {
        if self == 0 {
            0
        } else if exp as u32 >= self.leading_zeros() {
            u64::MAX
        } else {
            self << exp
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos == 0 {
        "0".into()
    } else if nanos % 1_000_000_000 == 0 {
        format!("{}s", nanos / 1_000_000_000)
    } else if nanos % 1_000_000 == 0 {
        format!("{}ms", nanos / 1_000_000)
    } else if nanos % 1_000 == 0 {
        format!("{}us", nanos / 1_000)
    } else {
        format!("{nanos}ns")
    }
}

/// A tiny deterministic xorshift64* generator for backoff jitter.
///
/// Each event loop seeds one from its own name, so jitter is
/// *reproducible per loop across runs* (fault schedules stay replayable)
/// while *distinct across loops* (no two loops draw the same sequence —
/// the property that breaks retry lock-step).
#[derive(Debug, Clone)]
pub struct JitterRng {
    state: u64,
}

impl JitterRng {
    /// A generator seeded from `seed` (zero is re-mapped; any value is a
    /// valid seed).
    pub fn new(seed: u64) -> JitterRng {
        JitterRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 | 1 }
    }

    /// A generator seeded from a string identity (e.g. a loop name).
    pub fn from_name(name: &str) -> JitterRng {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut hasher);
        JitterRng::new(hasher.finish())
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform duration in `[0, bound]` (inclusive; `bound == 0` is 0).
    pub fn uniform(&mut self, bound: Duration) -> Duration {
        let nanos = bound.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.next_u64() % (nanos + 1))
    }
}

/// Per-loop backoff state: which operation the streak belongs to, how
/// many consecutive transient failures it has absorbed, the previous
/// delay (decorrelated-jitter state), and the loop's private jitter RNG.
///
/// Owned by the loop's polling thread; a new head operation (or a
/// success) resets the streak automatically because the op id no longer
/// matches.
#[derive(Debug)]
pub struct BackoffState {
    op_id: u64,
    streak: u32,
    prev: Duration,
    rng: JitterRng,
}

impl BackoffState {
    /// Fresh state with the given jitter generator.
    pub fn new(rng: JitterRng) -> BackoffState {
        BackoffState { op_id: u64::MAX, streak: 0, prev: Duration::ZERO, rng }
    }

    /// The delay to apply after a transient failure of `op_id`, per
    /// `curve`. Consecutive calls for the same operation deepen the
    /// streak; a different operation restarts it.
    pub fn next_delay(&mut self, curve: &Backoff, op_id: u64) -> Duration {
        if self.op_id != op_id {
            self.op_id = op_id;
            self.streak = 0;
            self.prev = Duration::ZERO;
        }
        self.streak = self.streak.saturating_add(1);
        let delay = curve.delay(self.streak, self.prev, &mut self.rng);
        self.prev = delay;
        delay
    }
}

/// The complete distribution policy of one reference/discoverer/context.
///
/// Construct with [`Policy::new`] (or `Policy::default()`) and chain the
/// `with_*` builders; every knob has a safe default, so call sites only
/// state what they care about:
///
/// ```
/// use std::time::Duration;
/// use morena_core::policy::{Backoff, Policy};
///
/// let policy = Policy::new()
///     .with_timeout(Duration::from_secs(30))
///     .with_backoff(Backoff::exponential(
///         Duration::from_millis(5),
///         Duration::from_millis(160),
///     ))
///     .with_coalesce_writes(true);
/// assert!(policy.coalesce_writes);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Policy {
    /// Deadline budget applied when the caller gives no explicit
    /// per-call timeout (and no per-op override matches).
    pub default_timeout: Duration,
    /// Deadline budget for reads, overriding `default_timeout`.
    pub read_timeout: Option<Duration>,
    /// Deadline budget for writes (and `make_read_only`), overriding
    /// `default_timeout`.
    pub write_timeout: Option<Duration>,
    /// The retry curve for transiently failed operations.
    pub backoff: Backoff,
    /// How long a cached value stays servable from
    /// [`TagReference::cached`](crate::tagref::TagReference::cached);
    /// `None` (the default, the paper's semantics) never expires it —
    /// staleness is the application's documented risk.
    pub cache_ttl: Option<Duration>,
    /// Default lease duration for
    /// [`LeaseManager::acquire_default`](crate::lease::LeaseManager::acquire_default).
    pub lease_ttl: Duration,
    /// How often an otherwise-idle discovery thread wakes for
    /// housekeeping (stop-flag re-check). Tag events and explicit stops
    /// interrupt the wait immediately, so this cadence bounds idle CPU,
    /// not responsiveness.
    pub discovery_cadence: Duration,
    /// Collapse queued writes to the same tag region into one exchange
    /// at flush time (see the module docs for the exact semantics).
    /// Off by default: per-write exchanges are the paper's observable
    /// behavior and some applications count them.
    pub coalesce_writes: bool,
    /// Head-based sampling rate for causal traces: applied once when a
    /// *root* context is minted; every hop it causes (retries, verify
    /// probes, cross-device handlers) inherits the decision. Defaults to
    /// always-on — right for tests and debugging; swarms dial it down
    /// with [`SampleRate::one_in`] to keep tracing affordable at scale.
    pub trace_sample: SampleRate,
}

impl Default for Policy {
    fn default() -> Policy {
        Policy {
            default_timeout: Duration::from_secs(10),
            read_timeout: None,
            write_timeout: None,
            // Jittered exponential by default: first retry within
            // 5–10ms, doubling caps up to 320ms. The old constant 25ms
            // cadence is the documented retry-storm bug.
            backoff: Backoff::Exponential {
                base: Duration::from_millis(10),
                max: Duration::from_millis(320),
            },
            cache_ttl: None,
            lease_ttl: Duration::from_secs(30),
            discovery_cadence: Duration::from_millis(200),
            coalesce_writes: false,
            trace_sample: SampleRate::always(),
        }
    }
}

impl Policy {
    /// The default policy (alias for `Policy::default()` that reads
    /// better at the head of a builder chain).
    pub fn new() -> Policy {
        Policy::default()
    }

    /// Sets the default deadline budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Policy {
        self.default_timeout = timeout;
        self
    }

    /// Sets the read-specific deadline budget.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Policy {
        self.read_timeout = Some(timeout);
        self
    }

    /// Sets the write-specific deadline budget.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Policy {
        self.write_timeout = Some(timeout);
        self
    }

    /// Sets the retry curve.
    pub fn with_backoff(mut self, backoff: Backoff) -> Policy {
        self.backoff = backoff;
        self
    }

    /// Sets (or clears) the cache TTL.
    pub fn with_cache_ttl(mut self, ttl: Option<Duration>) -> Policy {
        self.cache_ttl = ttl;
        self
    }

    /// Sets the default lease duration.
    pub fn with_lease_ttl(mut self, ttl: Duration) -> Policy {
        self.lease_ttl = ttl;
        self
    }

    /// Sets the idle discovery housekeeping cadence.
    pub fn with_discovery_cadence(mut self, cadence: Duration) -> Policy {
        self.discovery_cadence = cadence;
        self
    }

    /// Enables or disables write coalescing.
    pub fn with_coalesce_writes(mut self, coalesce: bool) -> Policy {
        self.coalesce_writes = coalesce;
        self
    }

    /// Sets the head-based trace sampling rate.
    pub fn with_trace_sample(mut self, rate: SampleRate) -> Policy {
        self.trace_sample = rate;
        self
    }

    /// The deadline budget for one operation kind: the per-op override
    /// if set, the default otherwise.
    pub fn timeout_for(&self, kind: OpKind) -> Duration {
        match kind {
            OpKind::Read => self.read_timeout.unwrap_or(self.default_timeout),
            OpKind::Write | OpKind::MakeReadOnly => {
                self.write_timeout.unwrap_or(self.default_timeout)
            }
            _ => self.default_timeout,
        }
    }

    /// The effective-policy fields surfaced in inspector loop snapshots.
    pub fn info(&self) -> PolicyInfo {
        PolicyInfo {
            backoff: self.backoff.label(),
            timeout_nanos: self.default_timeout.as_nanos() as u64,
            coalesce_writes: self.coalesce_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_curve_is_the_seed_behavior() {
        let curve = Backoff::constant(Duration::from_millis(25));
        let mut rng = JitterRng::new(1);
        for streak in 1..6 {
            assert_eq!(
                curve.delay(streak, Duration::ZERO, &mut rng),
                Duration::from_millis(25),
                "constant curve never varies"
            );
        }
        assert_eq!(curve.label(), "constant(25ms)");
    }

    #[test]
    fn exponential_caps_double_and_saturate() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(80);
        let curve = Backoff::exponential(base, max);
        let mut rng = JitterRng::new(42);
        for streak in 1..12u32 {
            let cap = scale_pow2(base, streak - 1).min(max);
            let d = curve.delay(streak, Duration::ZERO, &mut rng);
            assert!(
                d >= cap / 2 && d <= cap,
                "streak {streak}: {d:?} outside [{:?}, {cap:?}]",
                cap / 2
            );
        }
        assert_eq!(curve.label(), "exp-jitter(10ms..80ms)");
    }

    #[test]
    fn decorrelated_stays_within_bounds() {
        let base = Duration::from_millis(2);
        let max = Duration::from_millis(64);
        let curve = Backoff::decorrelated(base, max);
        let mut rng = JitterRng::new(7);
        let mut prev = Duration::ZERO;
        for streak in 1..32u32 {
            let d = curve.delay(streak, prev, &mut rng);
            assert!(d >= base && d <= max, "{d:?} outside [{base:?}, {max:?}]");
            prev = d;
        }
    }

    #[test]
    fn distinct_seeds_draw_distinct_sequences() {
        // The anti-lock-step property: two loops (different names, so
        // different seeds) never share a jitter sequence.
        let curve = Backoff::exponential(Duration::from_millis(10), Duration::from_secs(1));
        let mut a = BackoffState::new(JitterRng::from_name("tag-a"));
        let mut b = BackoffState::new(JitterRng::from_name("tag-b"));
        let seq_a: Vec<Duration> = (0..16).map(|_| a.next_delay(&curve, 1)).collect();
        let seq_b: Vec<Duration> = (0..16).map(|_| b.next_delay(&curve, 1)).collect();
        assert_ne!(seq_a, seq_b, "two loops must not retry in lock-step");
        // And the same name reproduces the same sequence (replayability).
        let mut a2 = BackoffState::new(JitterRng::from_name("tag-a"));
        let seq_a2: Vec<Duration> = (0..16).map(|_| a2.next_delay(&curve, 1)).collect();
        assert_eq!(seq_a, seq_a2, "per-loop jitter is deterministic across runs");
    }

    #[test]
    fn streak_resets_on_a_new_operation() {
        let curve = Backoff::exponential(Duration::from_millis(10), Duration::from_secs(10));
        let mut state = BackoffState::new(JitterRng::new(3));
        let mut deep = Duration::ZERO;
        for _ in 0..8 {
            deep = state.next_delay(&curve, 1);
        }
        // Eight consecutive failures put the cap at 1.28s; a fresh op
        // must fall back to the base cap.
        assert!(deep >= Duration::from_millis(640), "deep streak reached the big caps: {deep:?}");
        let fresh = state.next_delay(&curve, 2);
        assert!(fresh <= Duration::from_millis(10), "new op restarts at the base cap: {fresh:?}");
    }

    #[test]
    fn per_op_timeouts_override_the_default() {
        let policy = Policy::new()
            .with_timeout(Duration::from_secs(5))
            .with_read_timeout(Duration::from_secs(1))
            .with_write_timeout(Duration::from_secs(2));
        assert_eq!(policy.timeout_for(OpKind::Read), Duration::from_secs(1));
        assert_eq!(policy.timeout_for(OpKind::Write), Duration::from_secs(2));
        assert_eq!(policy.timeout_for(OpKind::MakeReadOnly), Duration::from_secs(2));
        assert_eq!(policy.timeout_for(OpKind::Push), Duration::from_secs(5));
        assert_eq!(Policy::new().timeout_for(OpKind::Read), Duration::from_secs(10));
    }

    #[test]
    fn default_policy_is_jittered() {
        let policy = Policy::default();
        assert!(
            matches!(policy.backoff, Backoff::Exponential { .. }),
            "the default must not be the constant retry-storm curve"
        );
        assert!(!policy.coalesce_writes, "coalescing is opt-in");
        assert_eq!(policy.cache_ttl, None, "paper semantics: the cache never expires by default");
        let info = policy.info();
        assert!(info.backoff.starts_with("exp-jitter"));
        assert_eq!(info.timeout_nanos, 10_000_000_000);
    }

    #[test]
    fn labels_render_sub_millisecond_units() {
        assert_eq!(Backoff::constant(Duration::from_micros(300)).label(), "constant(300us)");
        assert_eq!(Backoff::constant(Duration::from_secs(2)).label(), "constant(2s)");
        assert_eq!(Backoff::constant(Duration::from_nanos(7)).label(), "constant(7ns)");
        assert_eq!(Backoff::constant(Duration::ZERO).label(), "constant(0)");
    }
}
