//! Tag discovery (§3.1 of the paper): turning low-level NFC events into
//! typed detections of *relevant* tags, delivered as first-class tag
//! references.
//!
//! A [`TagDiscoverer`] filters the stream of tags entering the phone's
//! field down to those carrying its converter's MIME type (plus blank
//! tags, for initialization flows), maintains the **one reference per
//! tag** identity map the paper requires, and invokes the application's
//! [`DiscoveryListener`] on the main thread:
//!
//! * [`DiscoveryListener::on_tag_detected`] — first sighting of a tag;
//! * [`DiscoveryListener::on_tag_redetected`] — a known tag came back;
//! * [`DiscoveryListener::on_empty_tag`] — a formatted but blank tag
//!   (the paper's `EmptyRecord` flow);
//! * [`DiscoveryListener::check_condition`] — the §3.4 fine-grained
//!   filter predicate, evaluated against the reference (typically its
//!   freshly cached value) before any callback fires.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{Receiver, RecvTimeoutError};
use morena_ndef::NdefMessage;
use morena_nfc_sim::tag::{TagTech, TagUid};
use morena_nfc_sim::world::NfcEvent;
use morena_obs::inspect::{ComponentSnapshot, DiscoverySnapshot, SnapshotProvider};
use morena_obs::{trace, EventKind, MemFootprint, TraceContext};
use parking_lot::Mutex;

use crate::context::MorenaContext;
use crate::convert::TagDataConverter;
use crate::policy::Policy;
use crate::tagref::TagReference;

/// How many times discovery retries the initial content read while the
/// tag stays in range (mirrors the platform pre-read).
const DISCOVERY_READ_ATTEMPTS: usize = 3;

/// Application callbacks for tag discovery. All methods run on the main
/// thread.
pub trait DiscoveryListener<C: TagDataConverter>: Send + Sync + 'static {
    /// A tag of this discoverer's type was seen for the very first time.
    fn on_tag_detected(&self, reference: TagReference<C>);

    /// A previously seen tag came back into range.
    fn on_tag_redetected(&self, reference: TagReference<C>);

    /// A formatted but blank tag was seen (candidate for initialization).
    fn on_empty_tag(&self, reference: TagReference<C>) {
        let _ = reference;
    }

    /// Fine-grained filter (§3.4): when this returns `false` the
    /// detection callbacks are suppressed for this sighting. The default
    /// accepts everything.
    fn check_condition(&self, reference: &TagReference<C>) -> bool {
        let _ = reference;
        true
    }
}

struct DiscovererInner<C: TagDataConverter> {
    ctx: MorenaContext,
    converter: Arc<C>,
    listener: Arc<dyn DiscoveryListener<C>>,
    policy: Policy,
    references: Mutex<HashMap<TagUid, TagReference<C>>>,
    stop: AtomicBool,
}

impl<C: TagDataConverter> Drop for DiscovererInner<C> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}

impl<C: TagDataConverter> MemFootprint for DiscovererInner<C> {
    fn mem_bytes(&self) -> u64 {
        // The identity map's own storage. Each entry's reference is an
        // `Arc` into an event loop that reports its own bytes through
        // its loop snapshot, so only the map slot is attributed here.
        let entries = self.references.lock().capacity() as u64;
        std::mem::size_of::<Self>() as u64
            + entries * std::mem::size_of::<(TagUid, TagReference<C>)>() as u64
    }
}

impl<C: TagDataConverter> SnapshotProvider for DiscovererInner<C> {
    fn snapshot(&self, _now_nanos: u64) -> ComponentSnapshot {
        let (live, closed) = {
            let references = self.references.lock();
            let closed = references.values().filter(|r| r.is_closed()).count();
            (references.len() - closed, closed)
        };
        ComponentSnapshot::Discovery(DiscoverySnapshot {
            phone: self.ctx.phone().as_u64(),
            mime: self.converter.mime_type().to_owned(),
            live_refs: live,
            closed_refs: closed,
            mem_bytes: self.mem_bytes(),
        })
    }
}

/// Watches the phone's field for tags carrying this discoverer's data
/// type and hands out unique [`TagReference`]s for them.
///
/// Dropping the discoverer stops discovery; references it created keep
/// working until [`TagReference::close`] (reclaiming references is the
/// application's responsibility, §3.2).
pub struct TagDiscoverer<C: TagDataConverter> {
    inner: Arc<DiscovererInner<C>>,
}

impl<C: TagDataConverter> Clone for TagDiscoverer<C> {
    fn clone(&self) -> TagDiscoverer<C> {
        TagDiscoverer { inner: Arc::clone(&self.inner) }
    }
}

impl<C: TagDataConverter> std::fmt::Debug for TagDiscoverer<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TagDiscoverer")
            .field("mime", &self.inner.converter.mime_type())
            .field("known_tags", &self.inner.references.lock().len())
            .finish()
    }
}

impl<C: TagDataConverter> TagDiscoverer<C> {
    /// Starts discovery inheriting the context's default [`Policy`] for
    /// its own cadence and for the references it creates.
    pub fn new(
        ctx: &MorenaContext,
        converter: Arc<C>,
        listener: Arc<dyn DiscoveryListener<C>>,
    ) -> TagDiscoverer<C> {
        TagDiscoverer::with_policy(ctx, converter, listener, ctx.default_policy())
    }

    /// Starts discovery pinned to an explicit [`Policy`]: its
    /// [`discovery_cadence`](Policy::discovery_cadence) drives how often
    /// the discovery thread wakes when no events arrive, and created
    /// references inherit the whole policy.
    pub fn with_policy(
        ctx: &MorenaContext,
        converter: Arc<C>,
        listener: Arc<dyn DiscoveryListener<C>>,
        policy: Policy,
    ) -> TagDiscoverer<C> {
        let inner = Arc::new(DiscovererInner {
            ctx: ctx.clone(),
            converter,
            listener,
            policy,
            references: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
        });
        inner.ctx.nfc().world().obs().inspector().register(
            format!("discovery-{}-{}", inner.ctx.phone().as_u64(), inner.converter.mime_type()),
            Arc::downgrade(&inner) as std::sync::Weak<dyn SnapshotProvider>,
        );
        // A private subscription created *here* — so the discoverer can
        // never observe a sighting from before it existed. Routing
        // discovery through the context's shared router would replay any
        // event buffered in the router's (older) subscription to this
        // freshly registered consumer; references tolerate that (their
        // connectivity routes are idempotent), discovery callbacks do
        // not.
        let events = ctx.nfc().events();
        spawn_discovery_thread(Arc::clone(&inner), events);
        TagDiscoverer { inner }
    }

    /// The MIME type this discoverer filters on.
    pub fn mime_type(&self) -> &str {
        self.inner.converter.mime_type()
    }

    /// The unique reference for `uid`, if this discoverer has seen it.
    pub fn reference_for(&self, uid: TagUid) -> Option<TagReference<C>> {
        self.inner.references.lock().get(&uid).cloned()
    }

    /// All references this discoverer has handed out so far.
    pub fn references(&self) -> Vec<TagReference<C>> {
        self.inner.references.lock().values().cloned().collect()
    }

    /// Closes and forgets the reference for `uid` (the application-driven
    /// garbage collection the paper prescribes). Returns whether a
    /// reference existed.
    pub fn forget(&self, uid: TagUid) -> bool {
        match self.inner.references.lock().remove(&uid) {
            Some(reference) => {
                reference.close();
                true
            }
            None => false,
        }
    }

    /// Stops discovery (references stay alive). No callback is delivered
    /// for any sighting after this returns: the discovery thread checks
    /// the flag before handling each event. The idle thread itself parks
    /// until its next event or cadence heartbeat before exiting, which
    /// is harmless — it delivers nothing once stopped.
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::Release);
    }
}

fn spawn_discovery_thread<C: TagDataConverter>(
    inner: Arc<DiscovererInner<C>>,
    events: Receiver<NfcEvent>,
) {
    std::thread::Builder::new()
        .name(format!("morena-discovery-{}", inner.converter.mime_type()))
        .spawn(move || {
            // Event-driven with a policy-tuned idle heartbeat: the old
            // hardcoded 20 ms `recv_timeout` woke this thread 50×/s per
            // discoverer even in a completely idle field. Now a wake
            // with no sighting happens only on the cadence heartbeat
            // (re-checking the stop flag against torn shutdown paths),
            // and the policy decides how often that is.
            let wakeups = inner.ctx.nfc().world().obs().metrics().counter("discovery.idle_wakeups");
            while !inner.stop.load(Ordering::Acquire) {
                match events.recv_timeout(inner.policy.discovery_cadence) {
                    // Re-check the flag per event so a stop issued while
                    // the thread slept suppresses every later sighting.
                    Ok(_) if inner.stop.load(Ordering::Acquire) => break,
                    Ok(NfcEvent::TagEntered { uid, tech }) => handle_entered(&inner, uid, tech),
                    // Tag loss is handled by each reference's own
                    // connectivity route; discovery only acts on entries.
                    Ok(_) => {}
                    Err(RecvTimeoutError::Timeout) => wakeups.inc(),
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        })
        .expect("spawn discovery thread");
}

fn handle_entered<C: TagDataConverter>(
    inner: &Arc<DiscovererInner<C>>,
    uid: TagUid,
    tech: TagTech,
) {
    // Every sighting roots a fresh causal trace: the pre-read below, the
    // detection event, and — because the listener callback runs under
    // this scope — any operation the application submits on the minted
    // reference all share one trace_id ("discovery-minted references").
    let world_recorder = Arc::clone(inner.ctx.nfc().world().obs());
    let trace_ctx = if world_recorder.is_enabled() {
        let trace_id = world_recorder.next_trace_id();
        let span_id = world_recorder.next_span_id();
        Some(if inner.policy.trace_sample.admits(trace_id) {
            TraceContext::root(trace_id, span_id)
        } else {
            TraceContext::unsampled_root(trace_id, span_id)
        })
    } else {
        None
    };
    let _scope = trace::enter(trace_ctx);

    // Discovery pre-read: learn what is on the tag (with a couple of
    // retries — arrival is the moment the link is weakest).
    let nfc = inner.ctx.nfc();
    let mut bytes = None;
    for _ in 0..DISCOVERY_READ_ATTEMPTS {
        match nfc.ndef_read(uid) {
            Ok(b) => {
                bytes = Some(b);
                break;
            }
            Err(e) if e.is_transient() && nfc.tag_in_range(uid) => continue,
            Err(_) => break,
        }
    }
    let Some(bytes) = bytes else { return };

    enum Sighting<V> {
        Blank,
        Value(V),
    }

    let sighting = if bytes.is_empty() {
        Sighting::Blank
    } else {
        match NdefMessage::parse(&bytes) {
            Ok(message) if message.is_blank() => Sighting::Blank,
            Ok(message) if inner.converter.accepts(&message) => {
                match inner.converter.from_message(&message) {
                    Ok(value) => Sighting::Value(value),
                    Err(_) => return, // corrupt payload of our type: disregard
                }
            }
            // Other data types are disregarded (§3.1).
            _ => return,
        }
    };

    let (reference, known) = {
        let mut references = inner.references.lock();
        // Applications close references they are done with (§3.2); a
        // closed reference never completes another operation, so keeping
        // it in the identity map leaks an event loop entry per retired
        // tag in long swarm runs — and would hand the dead reference
        // back out on redetection. The map only grows on sightings, so
        // sweeping here bounds it by the live reference population.
        references.retain(|_, existing| !existing.is_closed());
        match references.get(&uid) {
            Some(existing) => (existing.clone(), true),
            None => {
                let created = TagReference::with_policy(
                    &inner.ctx,
                    uid,
                    tech,
                    Arc::clone(&inner.converter),
                    inner.policy.clone(),
                );
                references.insert(uid, created.clone());
                (created, false)
            }
        }
    };

    // Sightings are observable even when `check_condition` later
    // suppresses the application callback.
    let recorder = inner.ctx.nfc().world().obs();
    let phone = inner.ctx.phone().as_u64();
    match sighting {
        Sighting::Blank => {
            recorder.metrics().counter("discovery.empty").inc();
            if recorder.is_enabled() {
                recorder.emit(
                    inner.ctx.clock().now().as_nanos(),
                    EventKind::EmptyTagDetected { phone, target: uid.to_string() },
                );
            }
            // A blank sighting does not wipe the cache: it holds the
            // last value successfully seen (§3.2), and a tag blanked by
            // a torn write reads back empty until repaired.
            if !inner.listener.check_condition(&reference) {
                return;
            }
            let listener = Arc::clone(&inner.listener);
            inner
                .ctx
                .handler()
                .post(move || trace::with(trace_ctx, move || listener.on_empty_tag(reference)));
        }
        Sighting::Value(value) => {
            recorder
                .metrics()
                .counter(if known { "discovery.redetected" } else { "discovery.detected" })
                .inc();
            if recorder.is_enabled() {
                recorder.emit(
                    inner.ctx.clock().now().as_nanos(),
                    EventKind::TagDetected { phone, target: uid.to_string(), redetection: known },
                );
            }
            reference.set_cached(Some(value));
            if !inner.listener.check_condition(&reference) {
                return;
            }
            let listener = Arc::clone(&inner.listener);
            inner.ctx.handler().post(move || {
                trace::with(trace_ctx, move || {
                    if known {
                        listener.on_tag_redetected(reference);
                    } else {
                        listener.on_tag_detected(reference);
                    }
                })
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::StringConverter;
    use crossbeam::channel::{unbounded, Sender};
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::Type2Tag;
    use morena_nfc_sim::world::World;
    use std::time::Duration;

    enum Event {
        Detected(TagUid, Option<String>),
        Redetected(TagUid),
        Empty(TagUid),
    }

    type Condition = Box<dyn Fn(&TagReference<StringConverter>) -> bool + Send + Sync>;

    struct Recording {
        tx: Sender<Event>,
        condition: Condition,
    }

    impl DiscoveryListener<StringConverter> for Recording {
        fn on_tag_detected(&self, reference: TagReference<StringConverter>) {
            self.tx.send(Event::Detected(reference.uid(), reference.cached())).unwrap();
        }
        fn on_tag_redetected(&self, reference: TagReference<StringConverter>) {
            self.tx.send(Event::Redetected(reference.uid())).unwrap();
        }
        fn on_empty_tag(&self, reference: TagReference<StringConverter>) {
            self.tx.send(Event::Empty(reference.uid())).unwrap();
        }
        fn check_condition(&self, reference: &TagReference<StringConverter>) -> bool {
            (self.condition)(reference)
        }
    }

    fn setup() -> (World, MorenaContext) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 9);
        let phone = world.add_phone("alice");
        let ctx = MorenaContext::headless(&world, phone);
        (world, ctx)
    }

    fn tag_with(world: &World, ctx: &MorenaContext, seed: u32, content: Option<&str>) -> TagUid {
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(seed))));
        if let Some(text) = content {
            world.tap_tag(uid, ctx.phone());
            let msg = StringConverter::plain_text().to_message(&text.to_string()).unwrap();
            ctx.nfc().ndef_write(uid, &msg.to_bytes()).unwrap();
            world.remove_tag_from_field(uid);
        }
        uid
    }

    fn discoverer(ctx: &MorenaContext, tx: Sender<Event>) -> TagDiscoverer<StringConverter> {
        TagDiscoverer::new(
            ctx,
            Arc::new(StringConverter::plain_text()),
            Arc::new(Recording { tx, condition: Box::new(|_| true) }),
        )
    }

    #[test]
    fn detects_then_redetects_with_unique_reference() {
        let (world, ctx) = setup();
        let uid = tag_with(&world, &ctx, 1, Some("hello"));
        let (tx, rx) = unbounded();
        let disco = discoverer(&ctx, tx);

        world.tap_tag(uid, ctx.phone());
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Event::Detected(u, cached) => {
                assert_eq!(u, uid);
                assert_eq!(cached.as_deref(), Some("hello"));
            }
            _ => panic!("expected detection"),
        }
        let first_ref = disco.reference_for(uid).unwrap();

        world.remove_tag_from_field(uid);
        world.tap_tag(uid, ctx.phone());
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Event::Redetected(u) if u == uid
        ));
        // Identity: still the same shared reference.
        let second_ref = disco.reference_for(uid).unwrap();
        assert!(Arc::ptr_eq(&first_ref.stats(), &second_ref.stats()));
        assert_eq!(disco.references().len(), 1);
    }

    #[test]
    fn blank_tags_surface_as_empty() {
        let (world, ctx) = setup();
        let uid = tag_with(&world, &ctx, 2, None);
        let (tx, rx) = unbounded();
        let _disco = discoverer(&ctx, tx);
        world.tap_tag(uid, ctx.phone());
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Event::Empty(u) if u == uid
        ));
    }

    #[test]
    fn foreign_mime_types_are_disregarded() {
        let (world, ctx) = setup();
        let uid = tag_with(&world, &ctx, 3, None);
        world.tap_tag(uid, ctx.phone());
        let other =
            StringConverter::new("application/other").to_message(&"not ours".to_string()).unwrap();
        ctx.nfc().ndef_write(uid, &other.to_bytes()).unwrap();
        world.remove_tag_from_field(uid);

        let (tx, rx) = unbounded();
        let disco = discoverer(&ctx, tx);
        world.tap_tag(uid, ctx.phone());
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err());
        assert!(disco.reference_for(uid).is_none());
    }

    #[test]
    fn check_condition_filters_sightings() {
        let (world, ctx) = setup();
        let yes = tag_with(&world, &ctx, 4, Some("keep"));
        let no = tag_with(&world, &ctx, 5, Some("drop"));
        let (tx, rx) = unbounded();
        let _disco = TagDiscoverer::new(
            &ctx,
            Arc::new(StringConverter::plain_text()),
            Arc::new(Recording {
                tx,
                condition: Box::new(|r| r.cached().as_deref() == Some("keep")),
            }),
        );
        world.tap_tag(no, ctx.phone());
        world.remove_tag_from_field(no);
        world.tap_tag(yes, ctx.phone());
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Event::Detected(u, _) => assert_eq!(u, yes),
            _ => panic!("expected detection of the kept tag"),
        }
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn forget_closes_and_removes_the_reference() {
        let (world, ctx) = setup();
        let uid = tag_with(&world, &ctx, 6, Some("x"));
        let (tx, rx) = unbounded();
        let disco = discoverer(&ctx, tx);
        world.tap_tag(uid, ctx.phone());
        rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(disco.forget(uid));
        assert!(!disco.forget(uid));
        assert!(disco.reference_for(uid).is_none());
        assert!(format!("{disco:?}").contains("text/plain"));
    }

    #[test]
    fn closed_references_are_swept_from_the_identity_map() {
        let (world, ctx) = setup();
        let (tx, rx) = unbounded();
        let disco = discoverer(&ctx, tx);
        // A stream of blank tags that are each seen once, used, and
        // closed — the pattern of a long-running swarm. Blank tags keep
        // it to exactly one sighting per generation (content would make
        // `tag_with` tap once itself), so once the event arrives no
        // sighting is still in flight and the close cannot race one.
        for seed in 10..14 {
            let uid = tag_with(&world, &ctx, seed, None);
            world.tap_tag(uid, ctx.phone());
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(10)).unwrap(),
                Event::Empty(u) if u == uid
            ));
            world.remove_tag_from_field(uid);
            disco.reference_for(uid).unwrap().close();
        }
        // The next sighting sweeps every closed reference.
        let fresh = tag_with(&world, &ctx, 99, None);
        world.tap_tag(fresh, ctx.phone());
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Event::Empty(u) if u == fresh
        ));
        assert_eq!(disco.references().len(), 1);
        assert!(disco.references().iter().all(|r| !r.is_closed()));
    }

    #[test]
    fn a_closed_reference_is_replaced_on_redetection() {
        let (world, ctx) = setup();
        let uid = tag_with(&world, &ctx, 8, None);
        let (tx, rx) = unbounded();
        let disco = discoverer(&ctx, tx);
        world.tap_tag(uid, ctx.phone());
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Event::Empty(u) if u == uid
        ));
        world.remove_tag_from_field(uid);
        disco.reference_for(uid).unwrap().close();
        // The tag returns: the dead reference must not be handed back
        // out — the sighting must mint a fresh, live one.
        world.tap_tag(uid, ctx.phone());
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Event::Empty(u) if u == uid
        ));
        assert!(!disco.reference_for(uid).unwrap().is_closed());
    }

    #[test]
    fn stop_is_prompt_even_under_a_long_cadence() {
        let (world, ctx) = setup();
        let uid = tag_with(&world, &ctx, 20, Some("x"));
        let (tx, rx) = unbounded();
        let disco = TagDiscoverer::with_policy(
            &ctx,
            Arc::new(StringConverter::plain_text()),
            Arc::new(Recording { tx, condition: Box::new(|_| true) }),
            Policy::new().with_discovery_cadence(Duration::from_secs(3600)),
        );
        // Events still arrive instantly — the cadence only paces idle
        // wakeups, not event handling.
        world.tap_tag(uid, ctx.phone());
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Event::Detected(u, _) if u == uid
        ));
        // And stop does not have to wait out the hour-long heartbeat.
        let started = std::time::Instant::now();
        disco.stop();
        std::thread::sleep(Duration::from_millis(60));
        world.remove_tag_from_field(uid);
        world.tap_tag(uid, ctx.phone());
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err());
        assert!(started.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn stopped_discoverer_reports_nothing() {
        let (world, ctx) = setup();
        let uid = tag_with(&world, &ctx, 7, Some("x"));
        let (tx, rx) = unbounded();
        let disco = discoverer(&ctx, tx);
        disco.stop();
        std::thread::sleep(Duration::from_millis(60));
        world.tap_tag(uid, ctx.phone());
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err());
    }
}
