//! Futures over the polled event loop, and the pooled completion state
//! behind them.
//!
//! The paper's API surface is listener pairs (§3.2: success/failure
//! callbacks delivered on the main thread). Production Rust wants
//! `Future`s. This module bridges the two *without* adding a runtime:
//! an [`OpFuture`] is a thin handle onto the same queued operation a
//! listener pair would observe, resolved inline by whichever thread
//! polls the loop (a scheduler shard worker or a dedicated driver). The
//! waker registered by the consumer is stored on the operation itself,
//! so completion wakes exactly the interested task — no parked helper
//! thread, no channel.
//!
//! # The completion core, and why it is pooled
//!
//! Every queued operation owns one [`OpCore`]: a claim flag (resolved
//! exactly once), a cancel-request flag, and a small mutex-guarded slot
//! holding the result and the consumer's waker. Cores are the only
//! per-operation heap state the submit→attempt→complete path needs, so
//! they are recycled through a per-shard [`OpPool`] freelist: once every
//! handle (the queue's, the future's, any [`OpTicket`]s) has been
//! dropped, the core returns to its pool and the next submit reuses it.
//! Steady state, a cached read on a warm loop performs **zero heap
//! allocations** end to end (asserted by the `ext_sched` bench under
//! the `alloc-profile` counter).
//!
//! # Cancellation safety
//!
//! Dropping an [`OpFuture`] before it resolves withdraws the operation:
//! the drop clears the registered waker under the slot lock (completion
//! also wakes under that lock, so after `drop` returns no waker
//! invocation can be in flight), requests cancellation, and wakes the
//! loop so the sweep fires promptly. Exactly one resolver ever claims a
//! core — listener delivery, future resolution, timeout, sweep, and
//! shutdown drain all go through the same claim, so an operation can
//! never be counted (or delivered) twice no matter how a cancel races a
//! completion.
//!
//! [`OpTicket`]: crate::eventloop::OpTicket

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};

use morena_obs::MemFootprint;
use parking_lot::Mutex;

use crate::eventloop::{OpFailure, OpResponse};

/// The core has not been resolved yet; resolvers may claim it.
const STATE_PENDING: u8 = 0;
/// Exactly one resolver claimed the core; everyone else backs off.
const STATE_RESOLVED: u8 = 1;

/// A pool keeps at most this many idle cores; beyond it, dropped cores
/// are simply freed. Generous for any realistic queue depth while
/// bounding the freelist of a shard that once saw a burst.
const POOL_CAP: usize = 1024;

#[derive(Default)]
struct CoreSlot {
    result: Option<Result<OpResponse, OpFailure>>,
    waker: Option<Waker>,
}

/// The pooled completion state of one queued operation.
pub(crate) struct OpCore {
    /// `STATE_PENDING` until exactly one resolver wins [`OpCore::try_claim`].
    state: AtomicU8,
    /// Cancellation *request* flag — read by the loop's sweep; the sweep
    /// (or drain) is what actually resolves the op as Cancelled.
    cancelled: AtomicBool,
    /// Live handles (queue side, future side, tickets). The last one to
    /// drop recycles the core into its pool, so a handle can never
    /// observe a core that was re-issued to a different operation.
    refs: AtomicUsize,
    slot: Mutex<CoreSlot>,
    pool: Weak<OpPool>,
}

impl OpCore {
    fn fresh(pool: Weak<OpPool>) -> OpCore {
        OpCore {
            state: AtomicU8::new(STATE_PENDING),
            cancelled: AtomicBool::new(false),
            refs: AtomicUsize::new(0),
            slot: Mutex::new(CoreSlot::default()),
            pool,
        }
    }

    /// Attempts to become the one resolver of this operation. All
    /// delivery paths (success, permanent failure, timeout, sweep,
    /// drain) call this first; only the winner records stats and
    /// delivers.
    pub(crate) fn try_claim(&self) -> bool {
        self.state
            .compare_exchange(STATE_PENDING, STATE_RESOLVED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Whether the operation has been resolved (claimed) already.
    pub(crate) fn is_resolved(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_RESOLVED
    }

    /// Requests cancellation; returns the *previous* flag value.
    pub(crate) fn request_cancel(&self) -> bool {
        self.cancelled.swap(true, Ordering::AcqRel)
    }

    /// Whether cancellation has been requested.
    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Stores the result for a future-mode operation and wakes the
    /// registered waker. Must only be called by the claiming resolver.
    ///
    /// The wake happens while the slot lock is held: `OpFuture::drop`
    /// takes the same lock to clear the waker, so once a drop returns,
    /// no waker invocation can still be in flight (the guarantee the
    /// async drop/cancel tests pin down).
    pub(crate) fn resolve(&self, result: Result<OpResponse, OpFailure>) {
        let mut slot = self.slot.lock();
        slot.result = Some(result);
        if let Some(waker) = slot.waker.take() {
            waker.wake();
        }
    }
}

/// A counted handle to an [`OpCore`]. Clones count; the last drop
/// recycles the core into its pool (after clearing the slot).
pub(crate) struct CoreHandle {
    core: Arc<OpCore>,
}

impl std::ops::Deref for CoreHandle {
    type Target = OpCore;
    fn deref(&self) -> &OpCore {
        &self.core
    }
}

impl Clone for CoreHandle {
    fn clone(&self) -> CoreHandle {
        self.core.refs.fetch_add(1, Ordering::Relaxed);
        CoreHandle { core: Arc::clone(&self.core) }
    }
}

impl Drop for CoreHandle {
    fn drop(&mut self) {
        if self.core.refs.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        // Last handle out: scrub and recycle. The slot is cleared fully
        // *before* the core re-enters the pool, so an acquirer can never
        // see a stale result, waker, or payload.
        {
            let mut slot = self.core.slot.lock();
            slot.result = None;
            slot.waker = None;
        }
        if let Some(pool) = self.core.pool.upgrade() {
            pool.release(Arc::clone(&self.core));
        }
    }
}

/// A freelist of completion cores. One per scheduler shard (all loops
/// pinned to the shard share it) or per dedicated-driver loop.
pub(crate) struct OpPool {
    free: Mutex<Vec<Arc<OpCore>>>,
}

impl OpPool {
    pub(crate) fn new() -> Arc<OpPool> {
        Arc::new(OpPool { free: Mutex::new(Vec::new()) })
    }

    /// Takes a core out of the freelist (or allocates one) and arms it
    /// for a new operation. The returned handle carries the single
    /// initial reference.
    pub(crate) fn acquire(self: &Arc<OpPool>) -> CoreHandle {
        let reused = self.free.lock().pop();
        let core = match reused {
            Some(core) => {
                core.state.store(STATE_PENDING, Ordering::Release);
                core.cancelled.store(false, Ordering::Release);
                core
            }
            None => Arc::new(OpCore::fresh(Arc::downgrade(self))),
        };
        core.refs.store(1, Ordering::Release);
        CoreHandle { core }
    }

    fn release(&self, core: Arc<OpCore>) {
        let mut free = self.free.lock();
        if free.len() < POOL_CAP {
            free.push(core);
        }
    }

    /// Idle cores currently parked in the freelist.
    pub(crate) fn free_len(&self) -> usize {
        self.free.lock().len()
    }

    /// A lone, already-resolved, cancel-flagged core outside any pool —
    /// the state behind dead tickets (operations that never queued).
    pub(crate) fn dead_core() -> CoreHandle {
        let core = Arc::new(OpCore::fresh(Weak::new()));
        core.state.store(STATE_RESOLVED, Ordering::Release);
        core.cancelled.store(true, Ordering::Release);
        core.refs.store(1, Ordering::Release);
        CoreHandle { core }
    }
}

impl MemFootprint for OpPool {
    fn mem_bytes(&self) -> u64 {
        let free = self.free.lock();
        (free.capacity() * std::mem::size_of::<Arc<OpCore>>()
            + free.len() * std::mem::size_of::<OpCore>()) as u64
    }
}

/// The untyped future of one queued operation; resolves with the raw
/// [`OpResponse`]. Public surfaces wrap it with conversion
/// (`ReadFuture`, `WriteFuture`) or discard the payload ([`UnitFuture`]).
pub(crate) struct OpFuture {
    /// `None` once the result has been consumed (or never queued).
    core: Option<CoreHandle>,
    task: Weak<crate::eventloop::Shared>,
}

impl OpFuture {
    pub(crate) fn new(core: CoreHandle, task: Weak<crate::eventloop::Shared>) -> OpFuture {
        OpFuture { core: Some(core), task }
    }

    /// A cancellation ticket for the underlying operation. After the
    /// future has resolved this returns a dead ticket (cancel is a
    /// no-op), matching [`OpTicket`](crate::eventloop::OpTicket)
    /// semantics for completed operations.
    pub(crate) fn ticket(&self) -> crate::eventloop::OpTicket {
        match &self.core {
            Some(core) => crate::eventloop::OpTicket::new(core.clone(), self.task.clone()),
            None => crate::eventloop::OpTicket::new(OpPool::dead_core(), Weak::new()),
        }
    }
}

impl Future for OpFuture {
    type Output = Result<OpResponse, OpFailure>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let core = this.core.as_ref().expect("OpFuture polled after completion");
        let mut slot = core.slot.lock();
        if let Some(result) = slot.result.take() {
            drop(slot);
            // Consuming the result releases our handle (and recycles the
            // core once the loop side has dropped its own).
            this.core = None;
            return Poll::Ready(result);
        }
        match &slot.waker {
            Some(waker) if waker.will_wake(cx.waker()) => {}
            _ => slot.waker = Some(cx.waker().clone()),
        }
        Poll::Pending
    }
}

impl Drop for OpFuture {
    fn drop(&mut self) {
        let Some(core) = self.core.take() else { return };
        // Clear the waker under the slot lock: completion wakes under
        // the same lock, so after this drop returns the waker can never
        // be invoked again.
        core.slot.lock().waker = None;
        if !core.is_resolved() && !core.request_cancel() {
            // Withdraw the operation: the loop's sweep resolves it as
            // Cancelled (nobody is listening, but stats and the
            // inspector's in-flight count must stay consistent).
            if let Some(task) = self.task.upgrade() {
                task.wake();
            }
        }
        // `core` drops here, releasing the future-side reference.
    }
}

/// The future of a queued operation whose payload carries no data —
/// beam/peer pushes, tag write-protection, and the bench harness's raw
/// reads. Resolves to `Ok(())` on completion; dropping it before then
/// withdraws the operation.
pub struct UnitFuture {
    state: UnitState,
}

enum UnitState {
    /// The operation is queued; resolve through its core.
    Queued(OpFuture),
    /// The operation never reached the queue (conversion failed, loop
    /// stopped): resolve immediately with the stored failure.
    Immediate(Option<OpFailure>),
}

impl UnitFuture {
    pub(crate) fn queued(inner: OpFuture) -> UnitFuture {
        UnitFuture { state: UnitState::Queued(inner) }
    }

    pub(crate) fn failed(failure: OpFailure) -> UnitFuture {
        UnitFuture { state: UnitState::Immediate(Some(failure)) }
    }

    /// A ticket to cancel the underlying operation without dropping the
    /// future.
    pub fn ticket(&self) -> crate::eventloop::OpTicket {
        match &self.state {
            UnitState::Queued(inner) => inner.ticket(),
            UnitState::Immediate(_) => {
                crate::eventloop::OpTicket::new(OpPool::dead_core(), Weak::new())
            }
        }
    }
}

impl std::fmt::Debug for UnitFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &self.state {
            UnitState::Queued(_) => "queued",
            UnitState::Immediate(_) => "immediate",
        };
        f.debug_struct("UnitFuture").field("state", &state).finish()
    }
}

impl Future for UnitFuture {
    type Output = Result<(), OpFailure>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match &mut self.get_mut().state {
            UnitState::Queued(inner) => match Pin::new(inner).poll(cx) {
                Poll::Pending => Poll::Pending,
                Poll::Ready(Ok(_)) => Poll::Ready(Ok(())),
                Poll::Ready(Err(failure)) => Poll::Ready(Err(failure)),
            },
            UnitState::Immediate(failure) => {
                Poll::Ready(Err(failure.take().expect("UnitFuture polled after completion")))
            }
        }
    }
}

struct ThreadParker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ThreadParker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.notified.swap(true, Ordering::Release) {
            self.thread.unpark();
        }
    }
}

thread_local! {
    /// One parker + waker per thread, reused across every `block_on`
    /// call so the blocking adapters allocate nothing per operation.
    static PARKER: (Arc<ThreadParker>, Waker) = {
        let parker = Arc::new(ThreadParker {
            thread: std::thread::current(),
            notified: AtomicBool::new(false),
        });
        let waker = Waker::from(Arc::clone(&parker));
        (parker, waker)
    };
}

/// Drives a future to completion by parking the calling thread between
/// polls — the engine behind the `read_sync`/`write_sync` blocking
/// adapters, usable with any MORENA future.
///
/// The parker waker is cached per thread, so repeated calls perform no
/// allocation of their own. Must not be called from the main thread
/// when the future depends on main-thread listener delivery (the
/// future-based operations do not — they resolve on the loop's polling
/// thread).
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = std::pin::pin!(future);
    PARKER.with(|(parker, waker)| {
        let mut cx = Context::from_waker(waker);
        loop {
            if let Poll::Ready(output) = future.as_mut().poll(&mut cx) {
                return output;
            }
            // Sleep until woken; tolerate spurious unparks and wakes
            // that landed before we parked.
            while !parker.notified.swap(false, Ordering::Acquire) {
                std::thread::park();
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_cores() {
        let pool = OpPool::new();
        let first = pool.acquire();
        let first_ptr = Arc::as_ptr(&first.core);
        assert_eq!(pool.free_len(), 0);
        drop(first);
        assert_eq!(pool.free_len(), 1, "last handle recycles the core");
        let second = pool.acquire();
        assert_eq!(Arc::as_ptr(&second.core), first_ptr, "served from the freelist");
        assert_eq!(pool.free_len(), 0);
        assert!(!second.is_resolved());
        assert!(!second.cancel_requested());
        let clone = second.clone();
        drop(second);
        assert_eq!(pool.free_len(), 0, "a live clone keeps the core out");
        drop(clone);
        assert_eq!(pool.free_len(), 1);
    }

    #[test]
    fn claim_is_exactly_once() {
        let pool = OpPool::new();
        let core = pool.acquire();
        assert!(core.try_claim());
        assert!(!core.try_claim(), "second resolver must lose");
        assert!(core.is_resolved());
    }

    #[test]
    fn recycled_cores_are_scrubbed() {
        let pool = OpPool::new();
        let core = pool.acquire();
        assert!(core.try_claim());
        core.resolve(Ok(OpResponse::Done));
        core.request_cancel();
        drop(core);
        let fresh = pool.acquire();
        assert!(!fresh.is_resolved());
        assert!(!fresh.cancel_requested());
        assert!(fresh.slot.lock().result.is_none());
        assert!(fresh.slot.lock().waker.is_none());
    }

    #[test]
    fn block_on_runs_simple_futures() {
        assert_eq!(block_on(std::future::ready(7)), 7);
        // A future that wakes itself from another thread.
        struct Late {
            done: Arc<AtomicBool>,
            spawned: bool,
        }
        impl Future for Late {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                let this = self.get_mut();
                if this.done.load(Ordering::Acquire) {
                    return Poll::Ready(());
                }
                if !this.spawned {
                    this.spawned = true;
                    let done = Arc::clone(&this.done);
                    let waker = cx.waker().clone();
                    std::thread::spawn(move || {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        done.store(true, Ordering::Release);
                        waker.wake();
                    });
                }
                Poll::Pending
            }
        }
        block_on(Late { done: Arc::new(AtomicBool::new(false)), spawned: false });
    }

    #[test]
    fn pool_mem_footprint_counts_parked_cores() {
        let pool = OpPool::new();
        let handles: Vec<CoreHandle> = (0..8).map(|_| pool.acquire()).collect();
        drop(handles);
        assert!(pool.mem_bytes() >= 8 * std::mem::size_of::<OpCore>() as u64);
    }
}
