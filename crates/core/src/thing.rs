//! Things (§2 of the paper): typed application objects **causally
//! connected to an RFID tag**.
//!
//! A [`Thing`] is any serde-serializable type with a name; MORENA stores
//! it on tags as JSON (the paper uses GSON) under a per-type MIME type.
//! Mark fields that must not be persisted with `#[serde(skip)]` — the
//! Rust spelling of the paper's `transient` fields.
//!
//! The entry point is a [`ThingSpace`]: the Rust shape of the paper's
//! `ThingActivity<T>`, minus the mandatory activity coupling. It watches
//! for tags carrying things of type `T` (and for blank tags to
//! initialize), receives things beamed from other phones, and broadcasts
//! things to nearby phones — invoking a [`ThingObserver`] on the main
//! thread:
//!
//! * `when_discovered(BoundThing<T>)` — a tag with a `T` was scanned;
//! * `when_discovered_empty(EmptyThingSlot<T>)` — a blank tag was
//!   scanned and can be initialized (`EmptyRecord` in the paper);
//! * `when_received(T)` — a `T` arrived over Beam (unbound to any tag).
//!
//! A [`BoundThing`] supports synchronous access to the cached value plus
//! asynchronous `save_async` / `read_async`, all fault-tolerant and
//! non-blocking, exactly like the underlying tag reference.

use std::sync::Arc;
use std::time::Duration;

use morena_nfc_sim::tag::TagUid;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::beam::{BeamListener, BeamReceiver, Beamer};
use crate::context::MorenaContext;
use crate::convert::{ConvertError, JsonConverter};
use crate::discovery::{DiscoveryListener, TagDiscoverer};
use crate::eventloop::OpFailure;
use crate::policy::Policy;
use crate::tagref::TagReference;

/// A value that can live on RFID tags and travel over Beam.
///
/// # Examples
///
/// ```
/// use morena_core::thing::Thing;
/// use serde::{Deserialize, Serialize};
///
/// #[derive(Debug, Clone, Serialize, Deserialize)]
/// struct WifiConfig {
///     ssid: String,
///     key: String,
///     #[serde(skip)] // "transient": never stored on the tag
///     attempts: u32,
/// }
///
/// impl Thing for WifiConfig {
///     const TYPE_NAME: &'static str = "wifi-config";
/// }
///
/// assert_eq!(WifiConfig::mime_type(), "application/vnd.morena.wifi-config+json");
/// ```
pub trait Thing: Serialize + DeserializeOwned + Clone + Send + Sync + 'static {
    /// Short, stable type name; part of the on-tag MIME type.
    const TYPE_NAME: &'static str;

    /// The MIME type under which this thing type is stored and filtered.
    fn mime_type() -> String {
        format!("application/vnd.morena.{}+json", Self::TYPE_NAME)
    }

    /// The JSON converter for this thing type.
    fn converter() -> JsonConverter<Self> {
        JsonConverter::new(&Self::mime_type())
    }
}

/// The tag-reference converter type used by the things layer.
pub type ThingConverter<T> = JsonConverter<T>;

/// Application callbacks of a [`ThingSpace`]; all run on the main thread.
pub trait ThingObserver<T: Thing>: Send + Sync + 'static {
    /// A tag carrying a `T` was scanned (first sighting or re-sighting).
    fn when_discovered(&self, thing: BoundThing<T>);

    /// A formatted but blank tag was scanned; initialize it to bind a
    /// thing to it.
    fn when_discovered_empty(&self, slot: EmptyThingSlot<T>) {
        let _ = slot;
    }

    /// A `T` arrived over Beam. Unlike the paper — where beamed things
    /// re-enter `whenDiscovered` — the unbound value is delivered
    /// separately, because a beamed thing has no tag to be causally
    /// connected to (it can be bound later by initializing a blank tag).
    fn when_received(&self, thing: T) {
        let _ = thing;
    }
}

/// A thing causally connected to one RFID tag.
///
/// Synchronous access ([`value`](BoundThing::value)) reads the cached
/// copy — instant, but with the paper's caveat that another device may
/// have updated the tag since. [`save_async`](BoundThing::save_async)
/// and [`read_async`](BoundThing::read_async) are the fault-tolerant
/// asynchronous paths.
pub struct BoundThing<T: Thing> {
    reference: TagReference<ThingConverter<T>>,
}

impl<T: Thing> Clone for BoundThing<T> {
    fn clone(&self) -> BoundThing<T> {
        BoundThing { reference: self.reference.clone() }
    }
}

impl<T: Thing> std::fmt::Debug for BoundThing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundThing")
            .field("type", &T::TYPE_NAME)
            .field("uid", &self.reference.uid().to_string())
            .finish()
    }
}

impl<T: Thing> BoundThing<T> {
    /// Wraps an existing tag reference as a bound thing.
    pub fn from_reference(reference: TagReference<ThingConverter<T>>) -> BoundThing<T> {
        BoundThing { reference }
    }

    /// The UID of the tag this thing lives on.
    pub fn uid(&self) -> TagUid {
        self.reference.uid()
    }

    /// The underlying tag reference, for advanced use.
    pub fn reference(&self) -> &TagReference<ThingConverter<T>> {
        &self.reference
    }

    /// Whether the tag is currently in range.
    pub fn is_connected(&self) -> bool {
        self.reference.is_connected()
    }

    /// The cached thing value, if any (synchronous, possibly stale).
    pub fn try_value(&self) -> Option<T> {
        self.reference.cached()
    }

    /// The cached thing value.
    ///
    /// # Panics
    ///
    /// Panics if no value has been cached yet (a thing delivered by
    /// `when_discovered` always has one).
    pub fn value(&self) -> T {
        self.try_value().expect("bound thing has no cached value yet")
    }

    /// Mutates the cached value locally; call
    /// [`save_async`](BoundThing::save_async) to write the change
    /// through to the tag (§2.4).
    pub fn update(&self, mutate: impl FnOnce(&mut T)) {
        let mut value = self.value();
        mutate(&mut value);
        self.reference.set_cached(Some(value));
    }

    /// Replaces the cached value locally.
    pub fn set_value(&self, value: T) {
        self.reference.set_cached(Some(value));
    }

    /// Asynchronously writes the cached value to the tag with the
    /// default timeout; listeners run on the main thread.
    pub fn save_async<F, G>(&self, on_saved: F, on_failed: G)
    where
        F: FnOnce(BoundThing<T>) + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.save_impl(None, on_saved, on_failed);
    }

    /// [`save_async`](BoundThing::save_async) with an explicit timeout.
    pub fn save_async_with_timeout<F, G>(&self, timeout: Duration, on_saved: F, on_failed: G)
    where
        F: FnOnce(BoundThing<T>) + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.save_impl(Some(timeout), on_saved, on_failed);
    }

    /// [`save_async`](BoundThing::save_async) without a failure listener.
    pub fn save_async_ok<F>(&self, on_saved: F)
    where
        F: FnOnce(BoundThing<T>) + Send + 'static,
    {
        self.save_impl(None, on_saved, |_| {});
    }

    fn save_impl<F, G>(&self, timeout: Option<Duration>, on_saved: F, on_failed: G)
    where
        F: FnOnce(BoundThing<T>) + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        let Some(value) = self.try_value() else {
            let ctx = self.reference.context().clone();
            ctx.handler().post(move || {
                on_failed(OpFailure::InvalidData(ConvertError::WrongShape {
                    expected: "a cached thing value to save".into(),
                }));
            });
            return;
        };
        let wrap = move |reference: TagReference<ThingConverter<T>>| {
            on_saved(BoundThing { reference });
        };
        match timeout {
            Some(t) => {
                self.reference.write_with_timeout(value, t, wrap, move |_, f| on_failed(f));
            }
            None => {
                self.reference.write(value, wrap, move |_, f| on_failed(f));
            }
        }
    }

    /// Asynchronously re-reads the thing from the tag, refreshing the
    /// cache (the safe alternative to stale synchronous access).
    pub fn read_async<F, G>(&self, on_read: F, on_failed: G)
    where
        F: FnOnce(BoundThing<T>) + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.reference
            .read(move |reference| on_read(BoundThing { reference }), move |_, f| on_failed(f));
    }

    /// Queues an asynchronous, **irreversible** write-protection of the
    /// thing's tag — freeze a provisioned thing so that no guest device
    /// can overwrite it.
    pub fn make_read_only_async<F, G>(&self, on_locked: F, on_failed: G)
    where
        F: FnOnce(BoundThing<T>) + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.reference.make_read_only(
            move |reference| on_locked(BoundThing { reference }),
            move |_, f| on_failed(f),
        );
    }

    /// Saves the cached value under an exclusive tag lease — the race
    /// protection the paper's §6 sets as the first goal of leasing:
    /// *"protect cached thing objects from data races when other
    /// RFID-enabled devices are able to write new data on their
    /// corresponding RFID tags"*.
    ///
    /// The save runs on a worker thread: it acquires a lease of `ttl`,
    /// writes the value with the lock record still in place, and
    /// releases. Listeners run on the main thread. If another device
    /// holds the tag (or wins the lock race), `on_failed` receives the
    /// corresponding [`LeaseError`](crate::lease::LeaseError) — unlike
    /// [`save_async`](BoundThing::save_async), there is no automatic
    /// retry, because a lease conflict is an application-level decision.
    pub fn save_exclusive<F, G>(&self, ttl: Duration, on_saved: F, on_failed: G)
    where
        F: FnOnce(BoundThing<T>) + Send + 'static,
        G: FnOnce(crate::lease::LeaseError) + Send + 'static,
    {
        use crate::convert::TagDataConverter as _;
        use crate::lease::{with_lease, LeaseError, LeaseManager, LeaseRecord};
        use morena_nfc_sim::error::NfcOpError;

        let ctx = self.reference.context().clone();
        let converter = Arc::clone(self.reference.converter());
        let uid = self.uid();
        let this = self.clone();
        let Some(value) = self.try_value() else {
            ctx.handler().post(move || {
                on_failed(LeaseError::Nfc(NfcOpError::Protocol("no cached value to save")));
            });
            return;
        };
        std::thread::Builder::new()
            .name(format!("morena-save-exclusive-{uid}"))
            .spawn(move || {
                let manager = LeaseManager::new(&ctx);
                let result = manager.with_lease_held(uid, ttl, |lease| {
                    let message = converter.to_message(&value).map_err(|_| {
                        LeaseError::Nfc(NfcOpError::Protocol("thing failed to serialize"))
                    })?;
                    let locked = with_lease(
                        &message,
                        LeaseRecord { holder: lease.holder, expires_at: lease.expires_at },
                    );
                    ctx.nfc().ndef_write(uid, &locked.to_bytes()).map_err(LeaseError::Nfc)
                });
                match result {
                    Ok(()) => {
                        this.reference.set_cached(Some(value));
                        ctx.handler().post(move || on_saved(this));
                    }
                    Err(e) => {
                        ctx.handler().post(move || on_failed(e));
                    }
                }
            })
            .expect("spawn exclusive save worker");
    }
}

/// A blank, formatted tag that can be initialized with a thing — the
/// paper's `EmptyRecord` (§2.2).
pub struct EmptyThingSlot<T: Thing> {
    reference: TagReference<ThingConverter<T>>,
}

impl<T: Thing> std::fmt::Debug for EmptyThingSlot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmptyThingSlot").field("uid", &self.reference.uid().to_string()).finish()
    }
}

impl<T: Thing> EmptyThingSlot<T> {
    /// The UID of the blank tag.
    pub fn uid(&self) -> TagUid {
        self.reference.uid()
    }

    /// Asynchronously writes `thing` to the blank tag, binding them; on
    /// success the saved listener receives the resulting [`BoundThing`].
    pub fn initialize<F, G>(&self, thing: T, on_saved: F, on_failed: G)
    where
        F: FnOnce(BoundThing<T>) + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.initialize_impl(thing, None, on_saved, on_failed);
    }

    /// [`initialize`](EmptyThingSlot::initialize) with a timeout.
    pub fn initialize_with_timeout<F, G>(
        &self,
        thing: T,
        timeout: Duration,
        on_saved: F,
        on_failed: G,
    ) where
        F: FnOnce(BoundThing<T>) + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.initialize_impl(thing, Some(timeout), on_saved, on_failed);
    }

    /// [`initialize`](EmptyThingSlot::initialize) without a failure
    /// listener.
    pub fn initialize_ok<F>(&self, thing: T, on_saved: F)
    where
        F: FnOnce(BoundThing<T>) + Send + 'static,
    {
        self.initialize_impl(thing, None, on_saved, |_| {});
    }

    fn initialize_impl<F, G>(&self, thing: T, timeout: Option<Duration>, on_saved: F, on_failed: G)
    where
        F: FnOnce(BoundThing<T>) + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        let bound = BoundThing { reference: self.reference.clone() };
        bound.set_value(thing);
        bound.save_impl(timeout, on_saved, on_failed);
    }
}

struct DiscoveryAdapter<T: Thing> {
    observer: Arc<dyn ThingObserver<T>>,
}

impl<T: Thing> DiscoveryListener<ThingConverter<T>> for DiscoveryAdapter<T> {
    fn on_tag_detected(&self, reference: TagReference<ThingConverter<T>>) {
        self.observer.when_discovered(BoundThing { reference });
    }

    fn on_tag_redetected(&self, reference: TagReference<ThingConverter<T>>) {
        self.observer.when_discovered(BoundThing { reference });
    }

    fn on_empty_tag(&self, reference: TagReference<ThingConverter<T>>) {
        self.observer.when_discovered_empty(EmptyThingSlot { reference });
    }
}

struct BeamAdapter<T: Thing> {
    observer: Arc<dyn ThingObserver<T>>,
}

impl<T: Thing> BeamListener<ThingConverter<T>> for BeamAdapter<T> {
    fn on_beam_received(&self, value: T) {
        self.observer.when_received(value);
    }
}

/// The runtime of the things layer for one thing type on one phone:
/// discovery, beam reception, and broadcasting (the paper's
/// `ThingActivity<T>` decoupled from activities).
pub struct ThingSpace<T: Thing> {
    discoverer: TagDiscoverer<ThingConverter<T>>,
    beamer: Beamer<ThingConverter<T>>,
    receiver: BeamReceiver<ThingConverter<T>>,
}

impl<T: Thing> std::fmt::Debug for ThingSpace<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThingSpace").field("type", &T::TYPE_NAME).finish()
    }
}

impl<T: Thing> ThingSpace<T> {
    /// Starts the things runtime inheriting the context's default
    /// [`Policy`].
    pub fn new(ctx: &MorenaContext, observer: Arc<dyn ThingObserver<T>>) -> ThingSpace<T> {
        ThingSpace::with_policy(ctx, observer, ctx.default_policy())
    }

    /// Starts the things runtime pinned to an explicit distribution
    /// [`Policy`], shared by its discoverer, references, and beamer.
    pub fn with_policy(
        ctx: &MorenaContext,
        observer: Arc<dyn ThingObserver<T>>,
        policy: Policy,
    ) -> ThingSpace<T> {
        let converter = Arc::new(T::converter());
        let discoverer = TagDiscoverer::with_policy(
            ctx,
            Arc::clone(&converter),
            Arc::new(DiscoveryAdapter { observer: Arc::clone(&observer) }),
            policy.clone(),
        );
        let beamer = Beamer::with_policy(ctx, Arc::clone(&converter), policy);
        let receiver = BeamReceiver::new(ctx, converter, Arc::new(BeamAdapter { observer }));
        ThingSpace { discoverer, beamer, receiver }
    }

    /// The discoverer behind this space (e.g. for
    /// [`TagDiscoverer::forget`]).
    pub fn discoverer(&self) -> &TagDiscoverer<ThingConverter<T>> {
        &self.discoverer
    }

    /// The bound thing for a known tag, when it carries a value.
    pub fn thing_for(&self, uid: TagUid) -> Option<BoundThing<T>> {
        self.discoverer.reference_for(uid).map(|reference| BoundThing { reference })
    }

    /// Asynchronously broadcasts `thing` to any phone in proximity
    /// (§2.5); listeners run on the main thread.
    pub fn broadcast<F, G>(&self, thing: T, on_success: F, on_failure: G)
    where
        F: FnOnce() + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.beamer.beam(thing, on_success, on_failure);
    }

    /// [`broadcast`](ThingSpace::broadcast) with an explicit timeout.
    pub fn broadcast_with_timeout<F, G>(
        &self,
        thing: T,
        timeout: Duration,
        on_success: F,
        on_failure: G,
    ) where
        F: FnOnce() + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.beamer.beam_with_timeout(thing, timeout, on_success, on_failure);
    }

    /// Number of broadcasts still waiting for a peer.
    pub fn broadcast_queue_len(&self) -> usize {
        self.beamer.queue_len()
    }

    /// Shuts the space down: discovery and reception stop, queued
    /// broadcasts are cancelled.
    pub fn close(&self) {
        self.discoverer.stop();
        self.receiver.stop();
        self.beamer.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::TagDataConverter;
    use crossbeam::channel::{unbounded, Sender};
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::Type2Tag;
    use morena_nfc_sim::world::World;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct WifiConfig {
        ssid: String,
        key: String,
        #[serde(skip)]
        attempts: u32,
    }

    impl Thing for WifiConfig {
        const TYPE_NAME: &'static str = "wifi-config";
    }

    enum Seen {
        Discovered(TagUid, WifiConfig),
        Empty(TagUid),
        Received(WifiConfig),
    }

    struct Observer {
        tx: Sender<Seen>,
    }

    impl ThingObserver<WifiConfig> for Observer {
        fn when_discovered(&self, thing: BoundThing<WifiConfig>) {
            self.tx.send(Seen::Discovered(thing.uid(), thing.value())).unwrap();
        }
        fn when_discovered_empty(&self, slot: EmptyThingSlot<WifiConfig>) {
            self.tx.send(Seen::Empty(slot.uid())).unwrap();
        }
        fn when_received(&self, thing: WifiConfig) {
            self.tx.send(Seen::Received(thing)).unwrap();
        }
    }

    fn setup() -> (World, MorenaContext) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 21);
        let phone = world.add_phone("alice");
        let ctx = MorenaContext::headless(&world, phone);
        (world, ctx)
    }

    fn wifi(ssid: &str) -> WifiConfig {
        WifiConfig { ssid: ssid.into(), key: "secret".into(), attempts: 9 }
    }

    #[test]
    fn blank_tag_initialize_then_rediscover() {
        let (world, ctx) = setup();
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        let (tx, rx) = unbounded();
        let space = ThingSpace::new(&ctx, Arc::new(Observer { tx }));

        world.tap_tag(uid, ctx.phone());
        let Seen::Empty(seen_uid) = rx.recv_timeout(Duration::from_secs(10)).unwrap() else {
            panic!("expected empty-tag discovery");
        };
        assert_eq!(seen_uid, uid);

        // Initialize the blank tag with a thing.
        let slot = EmptyThingSlot { reference: space.discoverer().reference_for(uid).unwrap() };
        let (done_tx, done_rx) = unbounded();
        slot.initialize(
            wifi("guest-net"),
            move |bound| done_tx.send(bound.value()).unwrap(),
            |f| panic!("initialize failed: {f}"),
        );
        let stored = done_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(stored.ssid, "guest-net");

        // Re-tapping now discovers the thing (transient field reset).
        world.remove_tag_from_field(uid);
        world.tap_tag(uid, ctx.phone());
        let Seen::Discovered(u, value) = rx.recv_timeout(Duration::from_secs(10)).unwrap() else {
            panic!("expected thing discovery");
        };
        assert_eq!(u, uid);
        assert_eq!(value.ssid, "guest-net");
        assert_eq!(value.attempts, 0, "transient field must not persist");
    }

    #[test]
    fn save_async_persists_updates() {
        let (world, ctx) = setup();
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(3))));
        world.tap_tag(uid, ctx.phone());
        ctx.nfc()
            .ndef_write(uid, &WifiConfig::converter().to_message(&wifi("old")).unwrap().to_bytes())
            .unwrap();
        world.remove_tag_from_field(uid);

        let (tx, rx) = unbounded();
        let space = ThingSpace::new(&ctx, Arc::new(Observer { tx }));
        world.tap_tag(uid, ctx.phone());
        rx.recv_timeout(Duration::from_secs(10)).unwrap();

        let bound = space.thing_for(uid).unwrap();
        bound.update(|w| {
            w.ssid = "MyNewWifiName".into();
            w.key = "MyNewWifiPassword".into();
        });
        let (saved_tx, saved_rx) = unbounded();
        bound.save_async(
            move |b| saved_tx.send(b.value().ssid).unwrap(),
            |f| panic!("save failed: {f}"),
        );
        assert_eq!(saved_rx.recv_timeout(Duration::from_secs(10)).unwrap(), "MyNewWifiName");

        // Verify over the air with a fresh read.
        let (read_tx, read_rx) = unbounded();
        bound.read_async(move |b| read_tx.send(b.value()).unwrap(), |f| panic!("read failed: {f}"));
        let read_back = read_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(read_back.ssid, "MyNewWifiName");
        assert_eq!(read_back.key, "MyNewWifiPassword");
    }

    #[test]
    fn broadcast_reaches_peer_thing_space() {
        let (world, actx) = setup();
        let bob = world.add_phone("bob");
        let bctx = MorenaContext::headless(&world, bob);

        let (atx, _arx) = unbounded();
        let aspace = ThingSpace::new(&actx, Arc::new(Observer { tx: atx }));
        let (btx, brx) = unbounded();
        let _bspace = ThingSpace::<WifiConfig>::new(&bctx, Arc::new(Observer { tx: btx }));

        // Queue the broadcast before the phones even meet (batching).
        let (ok_tx, ok_rx) = unbounded();
        aspace.broadcast(wifi("shared-net"), move || ok_tx.send(()).unwrap(), |f| panic!("{f}"));
        assert_eq!(aspace.broadcast_queue_len(), 1);

        world.bring_phones_together(actx.phone(), bctx.phone());
        ok_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        let Seen::Received(value) = brx.recv_timeout(Duration::from_secs(10)).unwrap() else {
            panic!("expected beamed thing");
        };
        assert_eq!(value.ssid, "shared-net");
    }

    #[test]
    fn save_without_value_fails_cleanly() {
        let (world, ctx) = setup();
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(4))));
        let reference = TagReference::new(
            &ctx,
            uid,
            morena_nfc_sim::tag::TagTech::Type2,
            Arc::new(WifiConfig::converter()),
        );
        let bound = BoundThing::from_reference(reference);
        assert!(bound.try_value().is_none());
        let (tx, rx) = unbounded();
        bound.save_async(|_| panic!("no"), move |f| tx.send(f).unwrap());
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            OpFailure::InvalidData(_)
        ));
    }

    #[test]
    fn frozen_things_cannot_be_saved_again() {
        let (world, ctx) = setup();
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(7))));
        world.tap_tag(uid, ctx.phone());
        ctx.nfc()
            .ndef_write(
                uid,
                &WifiConfig::converter().to_message(&wifi("frozen")).unwrap().to_bytes(),
            )
            .unwrap();
        world.remove_tag_from_field(uid);

        let (tx, rx) = unbounded();
        let space = ThingSpace::new(&ctx, Arc::new(Observer { tx }));
        world.tap_tag(uid, ctx.phone());
        rx.recv_timeout(Duration::from_secs(10)).unwrap();
        let bound = space.thing_for(uid).unwrap();

        let (locked_tx, locked_rx) = unbounded();
        bound.make_read_only_async(move |b| locked_tx.send(b.uid()).unwrap(), |f| panic!("{f}"));
        assert_eq!(locked_rx.recv_timeout(Duration::from_secs(10)).unwrap(), uid);

        bound.update(|w| w.ssid = "tampered".into());
        let (fail_tx, fail_rx) = unbounded();
        bound.save_async(|_| panic!("frozen tag"), move |f| fail_tx.send(f).unwrap());
        assert!(matches!(
            fail_rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            OpFailure::Failed(_)
        ));
        // The frozen content is intact on the tag.
        let (read_tx, read_rx) = unbounded();
        bound.read_async(move |b| read_tx.send(b.value().ssid).unwrap(), |f| panic!("{f}"));
        assert_eq!(read_rx.recv_timeout(Duration::from_secs(10)).unwrap(), "frozen");
    }

    #[test]
    fn save_exclusive_writes_under_a_lease_and_respects_holders() {
        use crate::lease::{LeaseError, LeaseManager};

        let (world, ctx) = setup();
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(6))));
        world.tap_tag(uid, ctx.phone());
        ctx.nfc()
            .ndef_write(uid, &WifiConfig::converter().to_message(&wifi("old")).unwrap().to_bytes())
            .unwrap();
        world.remove_tag_from_field(uid);

        let (tx, rx) = unbounded();
        let space = ThingSpace::new(&ctx, Arc::new(Observer { tx }));
        world.tap_tag(uid, ctx.phone());
        rx.recv_timeout(Duration::from_secs(10)).unwrap();
        let bound = space.thing_for(uid).unwrap();

        // Happy path: the exclusive save goes through and the lease is gone.
        bound.update(|w| w.ssid = "exclusive-net".into());
        let (saved_tx, saved_rx) = unbounded();
        bound.save_exclusive(
            Duration::from_secs(5),
            move |b| saved_tx.send(b.value().ssid).unwrap(),
            |e| panic!("exclusive save failed: {e}"),
        );
        assert_eq!(saved_rx.recv_timeout(Duration::from_secs(10)).unwrap(), "exclusive-net");
        assert_eq!(LeaseManager::new(&ctx).inspect(uid).unwrap(), None);
        // Content on the tag is the updated thing (lease stripped).
        let bytes = ctx.nfc().ndef_read(uid).unwrap();
        let message = morena_ndef::NdefMessage::parse(&bytes).unwrap();
        let on_tag =
            WifiConfig::converter().from_message(&crate::lease::strip_lease(&message)).unwrap();
        assert_eq!(on_tag.ssid, "exclusive-net");

        // A foreign lease blocks the exclusive save.
        let rival_phone = world.add_phone("rival");
        world.set_phone_position(rival_phone, morena_nfc_sim::geometry::Point::new(1000.0, 0.0));
        let rival = LeaseManager::new(&MorenaContext::headless(&world, rival_phone));
        let lease = rival.acquire(uid, Duration::from_secs(60)).unwrap();
        let (err_tx, err_rx) = unbounded();
        bound.save_exclusive(
            Duration::from_secs(5),
            |_| panic!("must not save while leased elsewhere"),
            move |e| err_tx.send(e).unwrap(),
        );
        assert!(matches!(
            err_rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            LeaseError::Held { .. }
        ));
        rival.release(&lease).unwrap();
    }

    #[test]
    fn close_stops_everything() {
        let (world, ctx) = setup();
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(5))));
        let (tx, rx) = unbounded();
        let space = ThingSpace::<WifiConfig>::new(&ctx, Arc::new(Observer { tx }));
        space.close();
        std::thread::sleep(Duration::from_millis(60));
        world.tap_tag(uid, ctx.phone());
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err());
        assert!(format!("{space:?}").contains("wifi-config"));
    }
}
