//! Far references to **phones**: the general ambient-oriented case.
//!
//! §1.2 of the paper describes the far-reference model for *"remote
//! services and RFID tags"* alike — a first-class reference that stores
//! messages while the party is unreachable and forwards them, in order,
//! when connectivity returns. [`TagReference`](crate::tagref::TagReference)
//! is that model for tags; [`PeerReference`] is the same machine pointed
//! at a specific peer phone, carried over the connection-oriented
//! (LLCP-style) NFC push transport.
//!
//! Unlike the undirected [`Beamer`](crate::beam::Beamer) — which pushes
//! to *whoever* is in proximity — a peer reference addresses one known
//! phone: messages queue until *that* phone is nearby, survive noise
//! through automatic retry, and expire at their timeout. [`PeerInbox`]
//! is the typed receiving side, delivering `(sender, value)` pairs on
//! the main thread.

use std::sync::Arc;
use std::time::Duration;

use morena_ndef::NdefMessage;
use morena_nfc_sim::controller::NfcHandle;
use morena_nfc_sim::error::NfcOpError;
use morena_nfc_sim::world::{obs_peer_target, NfcEvent, PhoneId};
use morena_obs::{trace, EventKind, MemFootprint};
use parking_lot::Mutex;

use crate::context::MorenaContext;
use crate::convert::TagDataConverter;
use crate::eventloop::{
    EventLoop, ObsScope, OpExecutor, OpFailure, OpRequest, OpResponse, OpStats,
};
use crate::future::UnitFuture;
use crate::policy::Policy;
use crate::router::RouteGuard;
use crate::tracewire;

struct PeerExecutor {
    nfc: NfcHandle,
    peer: PhoneId,
}

impl OpExecutor for PeerExecutor {
    fn connected(&self) -> bool {
        self.nfc.peers_in_range().contains(&self.peer)
    }

    fn execute(&self, request: &OpRequest) -> Result<OpResponse, NfcOpError> {
        match request {
            OpRequest::Push(bytes) => {
                // Runs under the op's ambient trace scope (see the poll
                // loop): a sampled context rides the payload in-band.
                let stamped = tracewire::stamp_outgoing(bytes);
                let payload = stamped.as_deref().unwrap_or(bytes);
                self.nfc
                    .beam_to(self.peer, payload)
                    .map(|()| OpResponse::Done)
                    .map_err(NfcOpError::Link)
            }
            _ => Err(NfcOpError::Protocol("peer references only push")),
        }
    }
}

struct PeerRefInner<C: TagDataConverter> {
    ctx: MorenaContext,
    peer: PhoneId,
    converter: Arc<C>,
    event_loop: EventLoop,
    route: Mutex<Option<RouteGuard>>,
}

impl<C: TagDataConverter> Drop for PeerRefInner<C> {
    fn drop(&mut self) {
        self.event_loop.stop();
    }
}

/// A first-class far reference to one peer phone.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use morena_core::context::MorenaContext;
/// use morena_core::convert::StringConverter;
/// use morena_core::peer::PeerReference;
/// use morena_nfc_sim::clock::VirtualClock;
/// use morena_nfc_sim::link::LinkModel;
/// use morena_nfc_sim::world::World;
///
/// let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
/// let alice = world.add_phone("alice");
/// let bob = world.add_phone("bob");
/// let ctx = MorenaContext::headless(&world, alice);
///
/// let to_bob = PeerReference::new(&ctx, bob, Arc::new(StringConverter::plain_text()));
/// // Queue a message for bob while he is across town.
/// to_bob.send("see you at the meetup".to_string(), || {}, |_| {});
/// assert_eq!(to_bob.queue_len(), 1);
/// ```
pub struct PeerReference<C: TagDataConverter> {
    inner: Arc<PeerRefInner<C>>,
}

impl<C: TagDataConverter> Clone for PeerReference<C> {
    fn clone(&self) -> PeerReference<C> {
        PeerReference { inner: Arc::clone(&self.inner) }
    }
}

impl<C: TagDataConverter> MemFootprint for PeerReference<C> {
    fn mem_bytes(&self) -> u64 {
        std::mem::size_of::<PeerRefInner<C>>() as u64 + self.inner.event_loop.mem_bytes()
    }
}

impl<C: TagDataConverter> std::fmt::Debug for PeerReference<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerReference")
            .field("peer", &self.inner.peer.to_string())
            .field("queued", &self.queue_len())
            .field("connected", &self.is_connected())
            .finish()
    }
}

impl<C: TagDataConverter> PeerReference<C> {
    /// Creates a reference to `peer` inheriting the context's default
    /// [`Policy`].
    pub fn new(ctx: &MorenaContext, peer: PhoneId, converter: Arc<C>) -> PeerReference<C> {
        PeerReference::with_policy(ctx, peer, converter, ctx.default_policy())
    }

    /// Creates a reference to `peer` pinned to an explicit distribution
    /// [`Policy`].
    pub fn with_policy(
        ctx: &MorenaContext,
        peer: PhoneId,
        converter: Arc<C>,
        policy: Policy,
    ) -> PeerReference<C> {
        let event_loop = EventLoop::spawn(
            &format!("peer-{peer}"),
            ctx.execution(),
            Arc::clone(ctx.clock()),
            ctx.handler(),
            policy,
            PeerExecutor { nfc: ctx.nfc().clone(), peer },
            // Target keyed like the simulator's peer-presence events
            // ("phone-N") so the correlator can join the two streams.
            ObsScope::new(ctx, format!("peer-{peer}"), "peer", obs_peer_target(peer)),
        );
        // Presence changes of *this* peer re-arm the loop, via the
        // context's shared event router.
        let loop_for_route = event_loop.clone();
        let route = ctx.router().register(move |event| match event {
            NfcEvent::PeerEntered { peer: p } | NfcEvent::PeerLeft { peer: p } if *p == peer => {
                loop_for_route.wake();
            }
            _ => {}
        });
        PeerReference {
            inner: Arc::new(PeerRefInner {
                ctx: ctx.clone(),
                peer,
                converter,
                event_loop,
                route: Mutex::new(Some(route)),
            }),
        }
    }

    /// The peer this reference points at.
    pub fn peer(&self) -> PhoneId {
        self.inner.peer
    }

    /// Whether the peer is in proximity right now.
    pub fn is_connected(&self) -> bool {
        self.inner.ctx.nfc().peers_in_range().contains(&self.inner.peer)
    }

    /// Messages still queued for the peer.
    pub fn queue_len(&self) -> usize {
        self.inner.event_loop.queue_len()
    }

    /// Lifetime delivery statistics.
    pub fn stats(&self) -> Arc<OpStats> {
        self.inner.event_loop.stats()
    }

    /// Queues `value` for delivery to the peer with the default timeout;
    /// listeners run on the main thread.
    pub fn send<F, G>(&self, value: C::Value, on_delivered: F, on_failure: G)
    where
        F: FnOnce() + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.send_impl(value, None, on_delivered, on_failure);
    }

    /// [`send`](PeerReference::send) with an explicit timeout.
    pub fn send_with_timeout<F, G>(
        &self,
        value: C::Value,
        timeout: Duration,
        on_delivered: F,
        on_failure: G,
    ) where
        F: FnOnce() + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        self.send_impl(value, Some(timeout), on_delivered, on_failure);
    }

    /// [`send`](PeerReference::send) without listeners.
    pub fn send_ok(&self, value: C::Value) {
        self.send_impl(value, None, || {}, |_| {});
    }

    fn send_impl<F, G>(
        &self,
        value: C::Value,
        timeout: Option<Duration>,
        on_delivered: F,
        on_failure: G,
    ) where
        F: FnOnce() + Send + 'static,
        G: FnOnce(OpFailure) + Send + 'static,
    {
        let bytes = match self.inner.converter.to_message(&value) {
            Ok(message) => message.to_bytes(),
            Err(e) => {
                self.inner.ctx.handler().post(move || on_failure(OpFailure::InvalidData(e)));
                return;
            }
        };
        self.inner.event_loop.submit(
            OpRequest::Push(bytes.into()),
            timeout,
            Box::new(move |_| on_delivered()),
            Box::new(on_failure),
        );
    }

    /// Queues `value` for delivery and returns a future resolving once
    /// it reaches the peer. Conversion failures resolve the future with
    /// [`OpFailure::InvalidData`]; dropping it before completion
    /// withdraws the message.
    pub fn send_async(&self, value: C::Value) -> UnitFuture {
        self.send_async_with_timeout_opt(value, None)
    }

    /// [`send_async`](PeerReference::send_async) with an explicit
    /// timeout.
    pub fn send_async_with_timeout(&self, value: C::Value, timeout: Duration) -> UnitFuture {
        self.send_async_with_timeout_opt(value, Some(timeout))
    }

    fn send_async_with_timeout_opt(
        &self,
        value: C::Value,
        timeout: Option<Duration>,
    ) -> UnitFuture {
        let bytes = match self.inner.converter.to_message(&value) {
            Ok(message) => message.to_bytes(),
            Err(e) => return UnitFuture::failed(OpFailure::InvalidData(e)),
        };
        UnitFuture::queued(
            self.inner.event_loop.submit_future(OpRequest::Push(bytes.into()), timeout),
        )
    }

    /// Stops the reference; queued messages fail with
    /// [`OpFailure::Cancelled`].
    pub fn close(&self) {
        self.inner.route.lock().take();
        self.inner.event_loop.stop();
    }
}

/// Typed reception of directed messages; methods run on the main thread.
pub trait PeerListener<C: TagDataConverter>: Send + Sync + 'static {
    /// A value arrived from `from`.
    fn on_message(&self, from: PhoneId, value: C::Value);

    /// Fine-grained filter applied before
    /// [`on_message`](PeerListener::on_message).
    fn check_condition(&self, from: PhoneId, value: &C::Value) -> bool {
        let _ = (from, value);
        true
    }
}

struct InboxInner {
    route: Mutex<Option<RouteGuard>>,
    _ctx: MorenaContext,
}

/// Receives directed (and broadcast) pushes of one data type, delivering
/// `(sender, value)` to a [`PeerListener`].
pub struct PeerInbox<C: TagDataConverter> {
    inner: Arc<InboxInner>,
    _marker: std::marker::PhantomData<fn() -> C>,
}

impl<C: TagDataConverter> std::fmt::Debug for PeerInbox<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerInbox").finish_non_exhaustive()
    }
}

impl<C: TagDataConverter> PeerInbox<C> {
    /// Starts receiving; matching messages reach `listener` on the main
    /// thread.
    pub fn new(
        ctx: &MorenaContext,
        converter: Arc<C>,
        listener: Arc<dyn PeerListener<C>>,
    ) -> PeerInbox<C> {
        let handler = ctx.handler();
        let recorder = Arc::clone(ctx.nfc().world().obs());
        let clock = Arc::clone(ctx.clock());
        let phone = ctx.phone().as_u64();
        let received_ctr = recorder.metrics().counter("peer.received");
        let route = ctx.router().register(move |event| {
            let NfcEvent::BeamReceived { from, bytes } = event else { return };
            let from = *from;
            let Ok(message) = NdefMessage::parse(bytes) else { return };
            // Strip the in-band trace record before converters or the
            // condition see the message, minting this phone's hop as a
            // child of the sender's span (see `crate::tracewire`).
            let wire_ctx = tracewire::find_trace(&message);
            let message = match wire_ctx {
                Some(_) => tracewire::strip_trace(&message),
                None => message,
            };
            let ctx = wire_ctx.map(|sender| sender.child(recorder.next_span_id()));
            if !converter.accepts(&message) {
                return;
            }
            let Ok(value) = converter.from_message(&message) else {
                return;
            };
            if !listener.check_condition(from, &value) {
                return;
            }
            received_ctr.inc();
            if recorder.is_enabled() {
                recorder.emit_traced(
                    clock.now().as_nanos(),
                    ctx,
                    EventKind::PeerReceived {
                        phone,
                        from: from.as_u64(),
                        bytes: bytes.len() as u64,
                    },
                );
            }
            let listener = Arc::clone(&listener);
            // Handler runs under the received context so the app's
            // response continues the sender's trace.
            handler.post(move || trace::with(ctx, move || listener.on_message(from, value)));
        });
        PeerInbox {
            inner: Arc::new(InboxInner { route: Mutex::new(Some(route)), _ctx: ctx.clone() }),
            _marker: std::marker::PhantomData,
        }
    }

    /// Stops receiving.
    pub fn stop(&self) {
        self.inner.route.lock().take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::StringConverter;
    use crossbeam::channel::{unbounded, Sender};
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::world::World;

    struct Collect {
        tx: Sender<(PhoneId, String)>,
    }

    impl PeerListener<StringConverter> for Collect {
        fn on_message(&self, from: PhoneId, value: String) {
            self.tx.send((from, value)).unwrap();
        }
    }

    fn setup() -> (World, MorenaContext, MorenaContext, MorenaContext) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 81);
        let a = world.add_phone("alice");
        let b = world.add_phone("bob");
        let c = world.add_phone("carol");
        (
            world.clone(),
            MorenaContext::headless(&world, a),
            MorenaContext::headless(&world, b),
            MorenaContext::headless(&world, c),
        )
    }

    #[test]
    fn messages_queue_until_the_specific_peer_arrives() {
        let (world, actx, bctx, cctx) = setup();
        let conv = Arc::new(StringConverter::plain_text());
        let to_bob = PeerReference::new(&actx, bctx.phone(), Arc::clone(&conv));

        let (b_tx, b_rx) = unbounded();
        let _bob_inbox = PeerInbox::new(&bctx, Arc::clone(&conv), Arc::new(Collect { tx: b_tx }));
        let (c_tx, c_rx) = unbounded();
        let _carol_inbox = PeerInbox::new(&cctx, Arc::clone(&conv), Arc::new(Collect { tx: c_tx }));

        let (ok_tx, ok_rx) = unbounded();
        for i in 0..3 {
            let ok_tx = ok_tx.clone();
            to_bob.send(format!("m{i}"), move || ok_tx.send(i).unwrap(), |f| panic!("{f}"));
        }
        assert_eq!(to_bob.queue_len(), 3);
        assert!(!to_bob.is_connected());

        // Carol showing up does NOT trigger delivery — the reference is
        // to bob specifically.
        world.bring_phones_together(actx.phone(), cctx.phone());
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(to_bob.queue_len(), 3);
        assert!(c_rx.try_recv().is_err());

        // Bob arrives: the whole queue flushes to him, in order.
        world.bring_phones_together(actx.phone(), bctx.phone());
        let received: Vec<(PhoneId, String)> =
            (0..3).map(|_| b_rx.recv_timeout(Duration::from_secs(10)).unwrap()).collect();
        assert_eq!(
            received,
            vec![
                (actx.phone(), "m0".to_string()),
                (actx.phone(), "m1".to_string()),
                (actx.phone(), "m2".to_string()),
            ]
        );
        assert_eq!(ok_rx.iter().take(3).count(), 3);
        // Carol, though equally close, received nothing.
        assert!(c_rx.try_recv().is_err());
        to_bob.close();
    }

    #[test]
    fn send_times_out_if_the_peer_never_comes() {
        let (world, actx, bctx, _cctx) = setup();
        let clock = {
            // Recover the virtual clock through the world for advancing.
            world.clock().clone()
        };
        let to_bob =
            PeerReference::new(&actx, bctx.phone(), Arc::new(StringConverter::plain_text()));
        let (tx, rx) = unbounded();
        to_bob.send_with_timeout(
            "never".into(),
            Duration::from_secs(3),
            || panic!("bob never arrives"),
            move |f| tx.send(f).unwrap(),
        );
        // Drive virtual time past the deadline.
        clock.sleep(Duration::from_secs(4));
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), OpFailure::TimedOut);
        to_bob.close();
    }

    #[test]
    fn inbox_condition_filters_by_sender() {
        let (world, actx, bctx, cctx) = setup();
        let conv = Arc::new(StringConverter::plain_text());

        struct OnlyFrom {
            wanted: PhoneId,
            tx: Sender<(PhoneId, String)>,
        }
        impl PeerListener<StringConverter> for OnlyFrom {
            fn on_message(&self, from: PhoneId, value: String) {
                self.tx.send((from, value)).unwrap();
            }
            fn check_condition(&self, from: PhoneId, _value: &String) -> bool {
                from == self.wanted
            }
        }

        let (tx, rx) = unbounded();
        let _inbox = PeerInbox::new(
            &cctx,
            Arc::clone(&conv),
            Arc::new(OnlyFrom { wanted: actx.phone(), tx }),
        );
        world.bring_phones_together(cctx.phone(), actx.phone());
        world.bring_phones_together(cctx.phone(), bctx.phone());

        let from_bob = PeerReference::new(&bctx, cctx.phone(), Arc::clone(&conv));
        from_bob.send_ok("ignored".into());
        let from_alice = PeerReference::new(&actx, cctx.phone(), Arc::clone(&conv));
        from_alice.send_ok("accepted".into());

        let (from, value) = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(from, actx.phone());
        assert_eq!(value, "accepted");
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn stopped_inbox_hears_nothing() {
        let (world, actx, bctx, _cctx) = setup();
        let conv = Arc::new(StringConverter::plain_text());
        let (tx, rx) = unbounded();
        let inbox = PeerInbox::new(&bctx, Arc::clone(&conv), Arc::new(Collect { tx }));
        inbox.stop();
        std::thread::sleep(Duration::from_millis(60));
        world.bring_phones_together(actx.phone(), bctx.phone());
        let to_bob = PeerReference::new(&actx, bctx.phone(), Arc::clone(&conv));
        to_bob.send_ok("unheard".into());
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err());
        assert!(format!("{inbox:?}").contains("PeerInbox"));
        to_bob.close();
    }

    #[test]
    fn close_cancels_queued_messages() {
        let (_world, actx, bctx, _cctx) = setup();
        let to_bob =
            PeerReference::new(&actx, bctx.phone(), Arc::new(StringConverter::plain_text()));
        let (tx, rx) = unbounded();
        to_bob.send("never".into(), || panic!("no"), move |f| tx.send(f).unwrap());
        to_bob.close();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), OpFailure::Cancelled);
        assert!(format!("{to_bob:?}").contains("PeerReference"));
    }
}
