//! The custom conversion strategy §3 of the paper calls out explicitly:
//! *"a good example is storing specific fields of an object directly on
//! the RFID tag while other fields are stored in some external
//! database"*.
//!
//! [`KeyedConverter`] stores only a small **key record** on the tag and
//! keeps the full object in an [`ObjectStore`] (an in-memory
//! [`MemoryStore`] here; a real deployment would back it with a
//! database). Because it is just another [`TagDataConverter`], the whole
//! middleware — references, discoverers, things, beam — works unchanged
//! over keyed storage: tags become durable pointers into the backend.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use morena_ndef::{NdefMessage, NdefRecord};
use parking_lot::Mutex;

use crate::convert::{ConvertError, TagDataConverter};

/// A key assigned to an object stored off-tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectKey(pub u64);

impl std::fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj-{:016x}", self.0)
    }
}

/// The backend holding the objects whose keys live on tags.
///
/// Implementations must tolerate concurrent access from the middleware's
/// event-loop threads.
pub trait ObjectStore<T>: Send + Sync + 'static {
    /// Stores `value`, returning its (new or reused) key.
    fn put(&self, value: &T) -> ObjectKey;

    /// Fetches the object for `key`, if present.
    fn get(&self, key: ObjectKey) -> Option<T>;
}

/// A thread-safe in-memory [`ObjectStore`] handing out sequential keys.
///
/// # Examples
///
/// ```
/// use morena_core::keyed::{MemoryStore, ObjectStore};
///
/// let store: MemoryStore<String> = MemoryStore::new();
/// let key = store.put(&"hello".to_string());
/// assert_eq!(store.get(key), Some("hello".to_string()));
/// ```
#[derive(Debug)]
pub struct MemoryStore<T> {
    objects: Mutex<HashMap<ObjectKey, T>>,
    next: AtomicU64,
}

impl<T> MemoryStore<T> {
    /// An empty store.
    pub fn new() -> MemoryStore<T> {
        MemoryStore { objects: Mutex::new(HashMap::new()), next: AtomicU64::new(1) }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.lock().is_empty()
    }
}

impl<T> Default for MemoryStore<T> {
    fn default() -> MemoryStore<T> {
        MemoryStore::new()
    }
}

impl<T: Clone + Send + Sync + 'static> ObjectStore<T> for MemoryStore<T> {
    fn put(&self, value: &T) -> ObjectKey {
        let key = ObjectKey(self.next.fetch_add(1, Ordering::Relaxed));
        self.objects.lock().insert(key, value.clone());
        key
    }

    fn get(&self, key: ObjectKey) -> Option<T> {
        self.objects.lock().get(&key).cloned()
    }
}

/// A converter that puts only an [`ObjectKey`] on the tag and resolves
/// it against an [`ObjectStore`] when reading.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use morena_core::convert::TagDataConverter;
/// use morena_core::keyed::{KeyedConverter, MemoryStore};
///
/// # fn main() -> Result<(), morena_core::convert::ConvertError> {
/// let store = Arc::new(MemoryStore::<String>::new());
/// let conv = KeyedConverter::new("application/vnd.example.key", store);
/// let message = conv.to_message(&"big object".to_string())?;
/// // Only 8 key bytes travel to the tag, not the object.
/// assert_eq!(message.first().payload().len(), 8);
/// assert_eq!(conv.from_message(&message)?, "big object");
/// # Ok(())
/// # }
/// ```
pub struct KeyedConverter<T> {
    mime: String,
    store: Arc<dyn ObjectStore<T>>,
}

impl<T> std::fmt::Debug for KeyedConverter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedConverter").field("mime", &self.mime).finish()
    }
}

impl<T> KeyedConverter<T> {
    /// Creates a keyed converter over `store`, using `mime` for the key
    /// records on tags.
    pub fn new(mime: &str, store: Arc<dyn ObjectStore<T>>) -> KeyedConverter<T> {
        KeyedConverter { mime: mime.to_owned(), store }
    }

    /// The key stored in a message of this converter's type, if valid.
    pub fn key_of(&self, message: &NdefMessage) -> Option<ObjectKey> {
        let record = message.first();
        if !record.is_mime(&self.mime) {
            return None;
        }
        let bytes: [u8; 8] = record.payload().try_into().ok()?;
        Some(ObjectKey(u64::from_be_bytes(bytes)))
    }
}

impl<T: Clone + Send + Sync + 'static> TagDataConverter for KeyedConverter<T> {
    type Value = T;

    fn mime_type(&self) -> &str {
        &self.mime
    }

    fn to_message(&self, value: &T) -> Result<NdefMessage, ConvertError> {
        let key = self.store.put(value);
        let record = NdefRecord::mime(&self.mime, key.0.to_be_bytes().to_vec())?;
        Ok(NdefMessage::single(record))
    }

    fn from_message(&self, message: &NdefMessage) -> Result<T, ConvertError> {
        let key = self.key_of(message).ok_or_else(|| ConvertError::WrongShape {
            expected: format!("an 8-byte key record of type {}", self.mime),
        })?;
        self.store.get(key).ok_or_else(|| ConvertError::WrongShape {
            expected: format!("backend object for {key}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn converter() -> (Arc<MemoryStore<String>>, KeyedConverter<String>) {
        let store = Arc::new(MemoryStore::new());
        let conv = KeyedConverter::new("application/vnd.test.key", Arc::clone(&store) as _);
        (store, conv)
    }

    #[test]
    fn round_trip_through_the_store() {
        let (store, conv) = converter();
        let message = conv.to_message(&"payload".to_string()).unwrap();
        assert!(conv.accepts(&message));
        assert_eq!(conv.from_message(&message).unwrap(), "payload");
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn distinct_objects_get_distinct_keys() {
        let (_store, conv) = converter();
        let a = conv.to_message(&"a".to_string()).unwrap();
        let b = conv.to_message(&"b".to_string()).unwrap();
        assert_ne!(conv.key_of(&a), conv.key_of(&b));
        assert_eq!(conv.from_message(&a).unwrap(), "a");
        assert_eq!(conv.from_message(&b).unwrap(), "b");
    }

    #[test]
    fn dangling_key_is_a_conversion_error() {
        let (_store, conv) = converter();
        let dangling = NdefMessage::single(
            NdefRecord::mime("application/vnd.test.key", 999u64.to_be_bytes().to_vec()).unwrap(),
        );
        assert!(matches!(conv.from_message(&dangling), Err(ConvertError::WrongShape { .. })));
    }

    #[test]
    fn wrong_shape_is_rejected() {
        let (_store, conv) = converter();
        let wrong_mime = NdefMessage::single(
            NdefRecord::mime("application/other", 1u64.to_be_bytes().to_vec()).unwrap(),
        );
        assert!(conv.from_message(&wrong_mime).is_err());
        assert!(conv.key_of(&wrong_mime).is_none());
        let short_key = NdefMessage::single(
            NdefRecord::mime("application/vnd.test.key", vec![1, 2, 3]).unwrap(),
        );
        assert!(conv.key_of(&short_key).is_none());
    }

    #[test]
    fn tiny_key_fits_the_smallest_tags() {
        let (_store, conv) = converter();
        let giant = "x".repeat(100_000); // far larger than any tag
        let message = conv.to_message(&giant).unwrap();
        // The on-tag footprint is constant regardless of object size.
        assert!(message.encoded_len() < 48);
        assert_eq!(conv.from_message(&message).unwrap(), giant);
    }

    #[test]
    fn key_display_and_store_default() {
        assert_eq!(ObjectKey(0xAB).to_string(), "obj-00000000000000ab");
        let store: MemoryStore<u32> = MemoryStore::default();
        assert!(store.is_empty());
    }

    #[test]
    fn works_end_to_end_over_a_simulated_tag() {
        use crate::context::MorenaContext;
        use crate::tagref::TagReference;
        use morena_nfc_sim::clock::VirtualClock;
        use morena_nfc_sim::link::LinkModel;
        use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
        use morena_nfc_sim::world::World;
        use std::time::Duration;

        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 71);
        let phone = world.add_phone("user");
        // The smallest tag model: the full object would never fit.
        let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(1))));
        world.tap_tag(uid, phone);
        let ctx = MorenaContext::headless(&world, phone);

        let store = Arc::new(MemoryStore::new());
        let conv =
            Arc::new(KeyedConverter::new("application/vnd.test.key", Arc::clone(&store) as _));
        let reference = TagReference::new(&ctx, uid, TagTech::Type2, conv);

        let big_object = "database-resident ".repeat(50);
        reference.write_sync(big_object.clone(), Duration::from_secs(10)).unwrap();
        reference.set_cached(None);
        let read_back = reference.read_sync(Duration::from_secs(10)).unwrap();
        assert_eq!(read_back, Some(big_object));
        reference.close();
    }
}
