//! The middleware's attachment point: everything MORENA needs from the
//! platform, decoupled from any particular activity.
//!
//! One of the paper's drawbacks of the raw API is its *"tight coupling
//! with the activity-based architecture"*: every NFC interaction must be
//! routed through the foreground activity. [`MorenaContext`] breaks that
//! coupling — it can be built *from* an activity (listeners then run on
//! that activity's main thread) or fully headless (the middleware pumps
//! its own main thread), letting RFID logic live outside the UI.

use std::sync::Arc;

use morena_android_sim::activity::ActivityContext;
use morena_android_sim::looper::{Handler, MainThread};
use morena_nfc_sim::clock::Clock;
use morena_nfc_sim::controller::NfcHandle;
use morena_nfc_sim::world::{PhoneId, World};

/// The platform services MORENA runs against: an NFC controller, a
/// main-thread handler for listener delivery, and a clock for timeouts.
///
/// Cheap to clone; all clones share the same main thread.
#[derive(Debug, Clone)]
pub struct MorenaContext {
    nfc: NfcHandle,
    handler: Handler,
    clock: Arc<dyn Clock>,
    // Keeps a headless main thread alive for as long as any clone lives.
    _own_main: Option<Arc<MainThread>>,
}

impl MorenaContext {
    /// Attaches MORENA to an activity: listeners will be delivered on the
    /// activity's main thread.
    pub fn from_activity(ctx: &ActivityContext) -> MorenaContext {
        MorenaContext {
            nfc: ctx.nfc().clone(),
            handler: ctx.handler(),
            clock: Arc::clone(ctx.nfc().world().clock()),
            _own_main: None,
        }
    }

    /// Runs MORENA without any activity (e.g. a background service): the
    /// context owns a private main thread for listener delivery.
    pub fn headless(world: &World, phone: PhoneId) -> MorenaContext {
        let main = Arc::new(MainThread::spawn());
        MorenaContext {
            nfc: NfcHandle::new(world.clone(), phone),
            handler: main.handler(),
            clock: Arc::clone(world.clock()),
            _own_main: Some(main),
        }
    }

    /// The phone's NFC controller.
    pub fn nfc(&self) -> &NfcHandle {
        &self.nfc
    }

    /// The phone this context operates.
    pub fn phone(&self) -> PhoneId {
        self.nfc.phone()
    }

    /// The handler listeners are posted to.
    pub fn handler(&self) -> Handler {
        self.handler.clone()
    }

    /// The clock used for timeouts and lease arithmetic.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;

    #[test]
    fn headless_context_delivers_on_private_main_thread() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
        let phone = world.add_phone("svc");
        let ctx = MorenaContext::headless(&world, phone);
        let (tx, rx) = crossbeam::channel::unbounded();
        ctx.handler().post(move || {
            tx.send(std::thread::current().name().map(str::to_owned)).unwrap();
        });
        let name = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert_eq!(name.as_deref(), Some("main-thread"));
        assert_eq!(ctx.phone(), phone);
    }

    #[test]
    fn clones_share_the_main_thread() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
        let phone = world.add_phone("svc");
        let ctx = MorenaContext::headless(&world, phone);
        let clone = ctx.clone();
        drop(ctx);
        // The clone keeps the main thread alive.
        let (tx, rx) = crossbeam::channel::unbounded();
        clone.handler().post(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(), 42);
    }
}
