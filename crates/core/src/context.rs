//! The middleware's attachment point: everything MORENA needs from the
//! platform, decoupled from any particular activity.
//!
//! One of the paper's drawbacks of the raw API is its *"tight coupling
//! with the activity-based architecture"*: every NFC interaction must be
//! routed through the foreground activity. [`MorenaContext`] breaks that
//! coupling — it can be built *from* an activity (listeners then run on
//! that activity's main thread) or fully headless (the middleware pumps
//! its own main thread), letting RFID logic live outside the UI.
//!
//! The context also owns the middleware's shared machinery: the
//! [`ExecutionPolicy`] deciding how far-reference event loops get
//! processor time (a sharded worker pool by default), and the single
//! event-router thread that fans controller events out to references.

use std::sync::Arc;

use morena_android_sim::activity::ActivityContext;
use morena_android_sim::looper::{Handler, MainThread};
use morena_nfc_sim::clock::Clock;
use morena_nfc_sim::controller::NfcHandle;
use morena_nfc_sim::world::{PhoneId, World};
use morena_obs::expose::ExpositionServer;
use morena_obs::timeseries::{Sampler, SamplerConfig};
use morena_obs::WatchdogConfig;

use parking_lot::Mutex;

use crate::policy::Policy;
use crate::router::EventRouter;
use crate::sched::{Execution, ExecutionPolicy};

/// The platform services MORENA runs against: an NFC controller, a
/// main-thread handler for listener delivery, a clock for timeouts, and
/// the execution engine driving this context's far-reference loops.
///
/// Cheap to clone; all clones share the same main thread, worker pool,
/// and event router.
#[derive(Debug, Clone)]
pub struct MorenaContext {
    nfc: NfcHandle,
    handler: Handler,
    clock: Arc<dyn Clock>,
    exec: Arc<Execution>,
    router: Arc<EventRouter>,
    /// The context-level distribution policy: the default every
    /// reference, discoverer, and beamer created from this context
    /// inherits (shared across clones; see
    /// [`set_default_policy`](MorenaContext::set_default_policy)).
    policy: Arc<Mutex<Policy>>,
    // Keeps a headless main thread alive for as long as any clone lives.
    _own_main: Option<Arc<MainThread>>,
}

impl MorenaContext {
    /// Attaches MORENA to an activity with the default execution policy:
    /// listeners will be delivered on the activity's main thread.
    pub fn from_activity(ctx: &ActivityContext) -> MorenaContext {
        MorenaContext::from_activity_with(ctx, ExecutionPolicy::default())
    }

    /// [`from_activity`](MorenaContext::from_activity) with an explicit
    /// [`ExecutionPolicy`] for this context's event loops.
    pub fn from_activity_with(ctx: &ActivityContext, policy: ExecutionPolicy) -> MorenaContext {
        MorenaContext::from_activity_with_policy(ctx, policy, Policy::default())
    }

    /// [`from_activity_with`](MorenaContext::from_activity_with) with an
    /// explicit context-level distribution [`Policy`] as well.
    pub fn from_activity_with_policy(
        ctx: &ActivityContext,
        exec_policy: ExecutionPolicy,
        policy: Policy,
    ) -> MorenaContext {
        let nfc = ctx.nfc().clone();
        let clock = Arc::clone(nfc.world().clock());
        let exec = Arc::new(Execution::new(exec_policy, Arc::clone(&clock), nfc.world().obs()));
        let router = Arc::new(EventRouter::spawn(&nfc));
        MorenaContext {
            nfc,
            handler: ctx.handler(),
            clock,
            exec,
            router,
            policy: Arc::new(Mutex::new(policy)),
            _own_main: None,
        }
    }

    /// Runs MORENA without any activity (e.g. a background service) with
    /// the default execution policy: the context owns a private main
    /// thread for listener delivery.
    pub fn headless(world: &World, phone: PhoneId) -> MorenaContext {
        MorenaContext::headless_with(world, phone, ExecutionPolicy::default())
    }

    /// [`headless`](MorenaContext::headless) with an explicit
    /// [`ExecutionPolicy`] for this context's event loops.
    pub fn headless_with(world: &World, phone: PhoneId, policy: ExecutionPolicy) -> MorenaContext {
        MorenaContext::headless_with_policy(world, phone, policy, Policy::default())
    }

    /// [`headless_with`](MorenaContext::headless_with) with an explicit
    /// context-level distribution [`Policy`] as well.
    pub fn headless_with_policy(
        world: &World,
        phone: PhoneId,
        exec_policy: ExecutionPolicy,
        policy: Policy,
    ) -> MorenaContext {
        let main = Arc::new(MainThread::spawn());
        let nfc = NfcHandle::new(world.clone(), phone);
        let clock = Arc::clone(world.clock());
        let exec = Arc::new(Execution::new(exec_policy, Arc::clone(&clock), world.obs()));
        let router = Arc::new(EventRouter::spawn(&nfc));
        MorenaContext {
            nfc,
            handler: main.handler(),
            clock,
            exec,
            router,
            policy: Arc::new(Mutex::new(policy)),
            _own_main: Some(main),
        }
    }

    /// The phone's NFC controller.
    pub fn nfc(&self) -> &NfcHandle {
        &self.nfc
    }

    /// The phone this context operates.
    pub fn phone(&self) -> PhoneId {
        self.nfc.phone()
    }

    /// The handler listeners are posted to.
    pub fn handler(&self) -> Handler {
        self.handler.clone()
    }

    /// The clock used for timeouts and lease arithmetic.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The execution policy this context's event loops run under.
    pub fn execution_policy(&self) -> ExecutionPolicy {
        self.exec.policy()
    }

    /// The context-level distribution [`Policy`]: what references,
    /// discoverers, and beamers created *without* an explicit policy
    /// inherit (a snapshot — later
    /// [`set_default_policy`](MorenaContext::set_default_policy) calls
    /// do not retune already-created components).
    pub fn default_policy(&self) -> Policy {
        self.policy.lock().clone()
    }

    /// Replaces the context-level distribution [`Policy`] at runtime.
    /// Affects components created afterwards, on every clone of this
    /// context; components pin their policy at creation.
    pub fn set_default_policy(&self, policy: Policy) {
        *self.policy.lock() = policy;
    }

    /// Start the continuous telemetry sampler over this context's
    /// world: a background thread capturing metric rates, queue
    /// depths, memory, and health into bounded ring buffers on
    /// `config.interval` cadence (see
    /// [`morena_obs::timeseries`]).
    ///
    /// Timestamps come from this context's clock, so series line up
    /// with every other obs artifact; the cadence itself is real time,
    /// so a wedged world cannot wedge its own monitor. **Shutdown
    /// ordering:** stop (or drop) the returned [`Sampler`] *before*
    /// tearing down the world — the sampler joins its thread on drop,
    /// after which no tick can observe half-dropped components.
    pub fn start_sampler(&self, config: SamplerConfig) -> Sampler {
        let recorder = Arc::clone(self.nfc.world().obs());
        let clock = Arc::clone(&self.clock);
        Sampler::spawn(recorder, move || clock.now().as_nanos(), config)
    }

    /// Serve this world's metrics and live health as an
    /// OpenMetrics/Prometheus scrape endpoint on `addr` (port 0 picks
    /// an ephemeral port; ask the returned server for
    /// [`local_addr`](ExpositionServer::local_addr)). Each scrape
    /// evaluates a fresh watchdog verdict under `watchdog` thresholds.
    /// The server joins its thread on shutdown or drop.
    pub fn serve_metrics(
        &self,
        addr: impl std::net::ToSocketAddrs,
        watchdog: WatchdogConfig,
    ) -> std::io::Result<ExpositionServer> {
        let recorder = Arc::clone(self.nfc.world().obs());
        let clock = Arc::clone(&self.clock);
        ExpositionServer::bind(addr, recorder, move || clock.now().as_nanos(), watchdog)
    }

    /// The engine far-reference loops attach to.
    pub(crate) fn execution(&self) -> &Execution {
        &self.exec
    }

    /// The context's shared event dispatcher.
    pub(crate) fn router(&self) -> &EventRouter {
        &self.router
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;

    #[test]
    fn headless_context_delivers_on_private_main_thread() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
        let phone = world.add_phone("svc");
        let ctx = MorenaContext::headless(&world, phone);
        let (tx, rx) = crossbeam::channel::unbounded();
        ctx.handler().post(move || {
            tx.send(std::thread::current().name().map(str::to_owned)).unwrap();
        });
        let name = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert_eq!(name.as_deref(), Some("main-thread"));
        assert_eq!(ctx.phone(), phone);
    }

    #[test]
    fn clones_share_the_main_thread() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
        let phone = world.add_phone("svc");
        let ctx = MorenaContext::headless(&world, phone);
        let clone = ctx.clone();
        drop(ctx);
        // The clone keeps the main thread alive.
        let (tx, rx) = crossbeam::channel::unbounded();
        clone.handler().post(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(), 42);
    }

    #[test]
    fn sampler_and_exposition_wire_to_the_worlds_recorder() {
        use std::io::{Read as _, Write as _};

        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
        let phone = world.add_phone("svc");
        let ctx = MorenaContext::headless(&world, phone);
        world.obs().metrics().counter("ctx.test.counter").add(3);

        let mut sampler = ctx.start_sampler(SamplerConfig {
            interval: std::time::Duration::from_millis(2),
            ..SamplerConfig::default()
        });
        for _ in 0..500 {
            if sampler.series().latest("inspect.health").is_some() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        sampler.stop();
        assert_eq!(sampler.series().latest("inspect.health"), Some(0.0));
        assert!(world.obs().metrics().snapshot().counter("obs.sampler.ticks") > 0);

        let server = ctx.serve_metrics(("127.0.0.1", 0), WatchdogConfig::default()).unwrap();
        let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "got: {response}");
        assert!(response.contains("morena_ctx_test_counter_total 3"));
        assert!(response.trim_end().ends_with("# EOF"));
    }

    #[test]
    fn context_reports_its_execution_policy() {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
        let phone = world.add_phone("svc");
        let ctx =
            MorenaContext::headless_with(&world, phone, ExecutionPolicy::Sharded { workers: 3 });
        assert_eq!(ctx.execution_policy(), ExecutionPolicy::Sharded { workers: 3 });
        let literal = MorenaContext::headless_with(&world, phone, ExecutionPolicy::ThreadPerLoop);
        assert_eq!(literal.execution_policy(), ExecutionPolicy::ThreadPerLoop);
    }
}
