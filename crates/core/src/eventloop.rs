//! The far-reference event loop (§3.2 of the paper).
//!
//! Every tag reference (and beamer) *"encapsulates a private event loop
//! that uses its own thread of control to sequentially check if the first
//! message in the queue can be processed. If it fails, it just remains in
//! the queue. […] It is guaranteed that a message is never processed
//! before previously scheduled messages are processed first."*
//!
//! This module implements exactly that machine, generically over an
//! internal executor trait so the same loop drives tag I/O and beam
//! pushes:
//!
//! * strict FIFO processing — the head operation blocks the queue;
//! * automatic retry of transiently failed operations (decoupling in
//!   time) on the loop's [`Policy`] backoff curve (jittered exponential
//!   by default — see [`crate::policy`]), re-armed immediately on
//!   connectivity changes;
//! * optional write coalescing ([`Policy::coalesce_writes`]): a front
//!   run of queued writes collapses into one exchange at flush time,
//!   completing every member exactly once in FIFO order;
//! * per-operation deadlines — an expired head operation is dropped and
//!   its failure listener fired;
//! * cancelled operations are swept from the whole queue (not just the
//!   head) and their failure listeners fired immediately;
//! * listener delivery on the application's main thread, in completion
//!   order.
//!
//! The loop itself is a poll-able state machine ([`Shared`] implements
//! [`PollTask`]): one call to `poll` performs at most one unit of work
//! and reports how the loop wants to be resumed. How polls get a thread
//! is the [`crate::sched`] module's business — either a dedicated driver
//! thread per loop (the paper-literal policy) or a pinned shard of the
//! context's worker pool (the default).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

use morena_android_sim::looper::Handler;
use morena_nfc_sim::clock::{Clock, SimInstant, WaitSignal};
use morena_nfc_sim::error::NfcOpError;
use morena_obs::inspect::{ComponentSnapshot, HeadOp, LoopSnapshot, SnapshotProvider};
use morena_obs::{
    trace, AttemptOutcome, Counter, EventKind, Histogram, MemFootprint, OpKind, OpOutcome,
    Recorder, TraceContext,
};
use parking_lot::Mutex;

use crate::context::MorenaContext;
use crate::convert::ConvertError;
use crate::future::{CoreHandle, OpFuture, OpPool};
use crate::policy::{BackoffState, JitterRng, Policy};
use crate::sched::{Execution, LoopPoll, PollTask, Shard};

/// Why an asynchronous MORENA operation did not succeed, delivered to the
/// operation's failure listener.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OpFailure {
    /// The operation stayed queued past its timeout. Transient faults
    /// (tag out of range, noise) surface this way after retries.
    TimedOut,
    /// The operation failed for a reason retrying cannot fix (tag is
    /// read-only, message too large, not NDEF-formatted, …).
    Failed(NfcOpError),
    /// The data on the tag could not be converted to the reference's
    /// value type.
    InvalidData(ConvertError),
    /// The reference/beamer was shut down with the operation still
    /// queued.
    Cancelled,
}

impl std::fmt::Display for OpFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpFailure::TimedOut => write!(f, "operation timed out"),
            OpFailure::Failed(e) => write!(f, "operation failed permanently: {e}"),
            OpFailure::InvalidData(e) => write!(f, "operation produced unconvertible data: {e}"),
            OpFailure::Cancelled => write!(f, "operation cancelled by shutdown"),
        }
    }
}

impl std::error::Error for OpFailure {}

/// A queued physical operation. Payloads are shared slices so the
/// per-attempt `clone` on the hot path is a refcount bump, not a buffer
/// copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum OpRequest {
    /// Read the full NDEF message.
    Read,
    /// Replace the NDEF message with these bytes.
    Write(Arc<[u8]>),
    /// Permanently write-protect the tag.
    MakeReadOnly,
    /// Push these bytes to any peer in proximity.
    Push(Arc<[u8]>),
}

/// What a successful operation yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum OpResponse {
    /// Bytes read from the tag (empty = blank tag).
    Bytes(Vec<u8>),
    /// The operation completed with nothing to return.
    Done,
}

/// The physical half of the loop: connectivity probing and the blocking
/// execution of one operation attempt.
///
/// `Sync` because the loop state lives on a shared scheduler; only one
/// thread calls `execute` at a time, but wakers may probe concurrently.
pub(crate) trait OpExecutor: Send + Sync + 'static {
    /// Whether the remote party is reachable right now.
    fn connected(&self) -> bool;

    /// Attempts `request` once, blocking for its full link latency.
    fn execute(&self, request: &OpRequest) -> Result<OpResponse, NfcOpError>;
}

// The per-loop lifetime counters migrated to `morena-obs` (one stats
// path for the whole workspace); re-exported here so `core::eventloop`
// remains their canonical middleware-facing home.
pub use morena_obs::{OpStats, OpStatsSnapshot};

/// Where a loop's operations land in the unified observability stream:
/// the world's [`Recorder`] plus the identity stamped on every event.
/// The `target` string must match the simulator's physical-event keying
/// (tag uid rendering, `phone-N` for peers, `*` for undirected beams)
/// so [`morena_obs::correlate`] can join the two streams.
#[derive(Clone)]
pub(crate) struct ObsScope {
    pub(crate) recorder: Arc<Recorder>,
    pub(crate) loop_name: String,
    /// Loop family label surfaced by the inspector (`tag`, `beam`,
    /// `peer`; `test` in harnesses).
    pub(crate) kind: &'static str,
    pub(crate) phone: u64,
    pub(crate) target: String,
}

impl ObsScope {
    /// Scope for a loop owned by `ctx`'s phone, wired to its world's
    /// recorder.
    pub(crate) fn new(
        ctx: &MorenaContext,
        loop_name: String,
        kind: &'static str,
        target: String,
    ) -> ObsScope {
        ObsScope {
            recorder: Arc::clone(ctx.nfc().world().obs()),
            loop_name,
            kind,
            phone: ctx.phone().as_u64(),
            target,
        }
    }

    /// Scope wired to a fresh disabled recorder — events go nowhere.
    #[cfg(any(test, feature = "bench-hooks"))]
    pub(crate) fn detached(name: &str) -> ObsScope {
        ObsScope {
            recorder: Arc::new(Recorder::new()),
            loop_name: name.to_owned(),
            kind: "test",
            phone: 0,
            target: name.to_owned(),
        }
    }

    /// Emits an event with an explicit trace context (overriding the
    /// thread's ambient one — the causal owner of a loop event is a
    /// queued op, not whatever the polling thread happens to be doing),
    /// constructing it only when recording is enabled (the disabled
    /// path is one relaxed atomic load).
    #[inline]
    fn emit_traced(
        &self,
        at: SimInstant,
        trace: Option<TraceContext>,
        make: impl FnOnce() -> EventKind,
    ) {
        if self.recorder.is_enabled() {
            self.recorder.emit_traced(at.as_nanos(), trace, make());
        }
    }
}

/// Metric handles resolved once at spawn so the hot loop never touches
/// the registry lock.
struct LoopMetrics {
    submitted: Counter,
    attempts: Counter,
    retries: Counter,
    succeeded: Counter,
    timed_out: Counter,
    failed: Counter,
    cancelled: Counter,
    attempt_ns: Arc<Histogram>,
    completion_ns: Arc<Histogram>,
    /// Chosen retry delays — the policy layer's observable behavior
    /// (jitter shows up as spread, curve depth as the upper tail).
    backoff_ns: Arc<Histogram>,
    /// Flushes that collapsed ≥2 queued writes into one exchange.
    coalesced_batches: Counter,
    /// Radio exchanges avoided by coalescing (batch size − 1 each).
    saved_exchanges: Counter,
}

impl LoopMetrics {
    fn resolve(recorder: &Recorder) -> LoopMetrics {
        let m = recorder.metrics();
        LoopMetrics {
            submitted: m.counter("ops.submitted"),
            attempts: m.counter("ops.attempts"),
            retries: m.counter("ops.retries"),
            succeeded: m.counter("ops.succeeded"),
            timed_out: m.counter("ops.timed_out"),
            failed: m.counter("ops.failed"),
            cancelled: m.counter("ops.cancelled"),
            attempt_ns: m.histogram("op.attempt_ns"),
            completion_ns: m.histogram("op.completion_ns"),
            backoff_ns: m.histogram("policy.backoff_ns"),
            coalesced_batches: m.counter("coalesce.batches"),
            saved_exchanges: m.counter("coalesce.saved_exchanges"),
        }
    }
}

fn op_kind(request: &OpRequest) -> OpKind {
    match request {
        OpRequest::Read => OpKind::Read,
        OpRequest::Write(_) => OpKind::Write,
        OpRequest::MakeReadOnly => OpKind::MakeReadOnly,
        OpRequest::Push(_) => OpKind::Push,
    }
}

/// A handle to one queued operation, usable to cancel it before it
/// completes (the §3.2 queue made manageable: a user backing out of a
/// pending write can withdraw it instead of waiting for the timeout).
///
/// Cancelling is idempotent; once the operation has completed (or timed
/// out) cancellation has no effect — `cancel` reports `false` and the
/// already-delivered outcome stands. Exactly one of {success listener,
/// failure listener} ever fires per operation, no matter how a cancel
/// races the completion (every resolution path claims the operation's
/// completion core first).
#[derive(Clone)]
pub struct OpTicket {
    core: CoreHandle,
    task: Weak<Shared>,
}

impl std::fmt::Debug for OpTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpTicket").field("cancelled", &self.is_cancelled()).finish()
    }
}

impl OpTicket {
    pub(crate) fn new(core: CoreHandle, task: Weak<Shared>) -> OpTicket {
        OpTicket { core, task }
    }

    /// A ticket for an operation that was never queued: already
    /// resolved, already cancelled, cancelling it is a no-op.
    pub(crate) fn dead() -> OpTicket {
        OpTicket::new(OpPool::dead_core(), Weak::new())
    }

    /// Requests cancellation. Returns whether this call withdrew the
    /// operation (false = already cancelled earlier, or already
    /// completed — a completed op cannot be un-delivered).
    ///
    /// The operation's failure listener fires with
    /// [`OpFailure::Cancelled`] when the loop sweeps it.
    pub fn cancel(&self) -> bool {
        if self.core.is_resolved() {
            return false;
        }
        let flipped = !self.core.request_cancel();
        if flipped {
            if let Some(task) = self.task.upgrade() {
                task.wake();
            }
        }
        flipped
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.core.cancel_requested()
    }
}

/// How a completed operation reaches its consumer.
pub(crate) enum Completion {
    /// The paper's surface: success/failure listener pair, posted to the
    /// application's main thread.
    Listeners {
        on_success: Box<dyn FnOnce(OpResponse) + Send>,
        on_failure: Box<dyn FnOnce(OpFailure) + Send>,
    },
    /// An [`OpFuture`] awaits the result: it is stored on the op's
    /// completion core and the registered waker is woken inline on the
    /// polling thread — no main-thread hop, no boxed closure.
    Future,
}

struct PendingOp {
    op_id: u64,
    request: OpRequest,
    deadline: SimInstant,
    enqueued_at: SimInstant,
    /// The pooled completion state shared with tickets and futures.
    core: CoreHandle,
    completion: Completion,
    /// The op's causal identity: minted at submit (a child of the
    /// submitter's ambient context, or a fresh sampled-or-not root) and
    /// stamped on every event this op causes — attempts, completion,
    /// the simulator's physical ground truth, and listener callbacks.
    trace: Option<TraceContext>,
}

/// The complete state of one event loop — the `LoopState` the scheduler
/// polls. Only the owning worker/driver thread ever calls
/// [`Shared::poll_loop`]; everything else is waker-side.
pub(crate) struct Shared {
    queue: Mutex<VecDeque<PendingOp>>,
    /// Park target of the thread-per-loop driver; also the wake channel
    /// for virtual-clock deadline delivery in that policy.
    signal: Arc<WaitSignal>,
    stopped: AtomicBool,
    /// Wake-dedupe flag: set while the task sits in its shard's ready
    /// queue (see [`PollTask::try_schedule`]).
    scheduled: AtomicBool,
    /// Set exactly once at spawn under the sharded policy; `None` means
    /// a dedicated driver thread parks on `signal` instead.
    shard: OnceLock<Arc<Shard>>,
    /// Completion-core freelist: the shard's shared pool under the
    /// sharded policy, a private one under thread-per-loop.
    pool: Arc<OpPool>,
    clock: Arc<dyn Clock>,
    handler: Handler,
    stats: Arc<OpStats>,
    policy: Policy,
    /// Retry-streak state and the loop's private jitter RNG; touched
    /// only by the polling thread (the mutex is a formality for `Sync`).
    backoff: Mutex<BackoffState>,
    executor: Box<dyn OpExecutor>,
    obs: ObsScope,
    metrics: LoopMetrics,
    /// Which op the polling thread last attempted (`u64::MAX` = none
    /// yet) and how many attempts it has absorbed — the inspector's
    /// retry-storm evidence. Written only by the polling thread, read
    /// by inspector snapshots.
    head_op_id: AtomicU64,
    head_attempts: AtomicU64,
    /// One-shot coalescing suppression, set when a *coalesced* exchange
    /// fails permanently: the failing exchange carried the run's last
    /// payload, so no individual op can be indicted by it. The next
    /// attempt runs the head alone (own bytes, own verdict), after
    /// which batching resumes. Only the polling thread touches it.
    suppress_coalesce: AtomicBool,
}

impl Shared {
    /// Posts a listener to the main thread; if the looper has already
    /// quit (application teardown), runs it inline on the current thread
    /// instead — the terminal-delivery guarantee outranks thread
    /// affinity once the main thread no longer exists.
    fn post_listener(&self, task: impl FnOnce() + Send + 'static) {
        if let Err(task) = self.handler.post_or_take(task) {
            task();
        }
    }

    /// Mints the causal identity of a newly submitted op.
    ///
    /// * Submitted under an ambient context (a listener callback, a
    ///   beam/peer handler, a lease acquire): the op is a *child* hop of
    ///   that context — same trace, new span, parent edge to the cause.
    /// * Submitted cold with recording enabled: a fresh *root*, sampled
    ///   per the policy's [`Policy::trace_sample`] rate (exact on the
    ///   recorder's monotonic trace ids).
    /// * Recording disabled and no ambient context: `None` — the only
    ///   cost was one TLS read and one relaxed load.
    fn mint_trace(&self) -> Option<TraceContext> {
        let recorder = &self.obs.recorder;
        if let Some(parent) = trace::current() {
            return Some(parent.child(recorder.next_span_id()));
        }
        if !recorder.is_enabled() {
            return None;
        }
        let trace_id = recorder.next_trace_id();
        let span_id = recorder.next_span_id();
        Some(if self.policy.trace_sample.admits(trace_id) {
            TraceContext::root(trace_id, span_id)
        } else {
            TraceContext::unsampled_root(trace_id, span_id)
        })
    }

    /// The single resolution path for a queued operation: claims the
    /// op's completion core (exactly one resolver wins — a listener can
    /// never fire *and* the op be swept as cancelled), records
    /// stats/metrics/obs for the winning outcome, and delivers it
    /// through the op's [`Completion`].
    fn complete(&self, op: PendingOp, at: SimInstant, outcome: Result<OpResponse, OpFailure>) {
        if !op.core.try_claim() {
            return;
        }
        // Every lifecycle event of this op carries *its* context, not
        // whatever happens to be ambient on the completing thread (a
        // coalesced follower completes during the head's attempt scope).
        let trace = op.trace;
        match &outcome {
            Ok(_) => {
                let completion_nanos = at.saturating_since(op.enqueued_at).as_nanos() as u64;
                self.stats.record_succeeded(completion_nanos);
                self.metrics.succeeded.inc();
                self.metrics.completion_ns.observe(completion_nanos);
                self.obs.emit_traced(at, trace, || EventKind::OpCompleted {
                    op_id: op.op_id,
                    outcome: OpOutcome::Succeeded,
                });
            }
            Err(OpFailure::TimedOut) => {
                self.stats.record_timed_out();
                self.metrics.timed_out.inc();
                self.obs.emit_traced(at, trace, || EventKind::OpCompleted {
                    op_id: op.op_id,
                    outcome: OpOutcome::TimedOut,
                });
            }
            Err(OpFailure::Cancelled) => {
                self.stats.record_cancelled();
                self.metrics.cancelled.inc();
                self.obs.emit_traced(at, trace, || EventKind::OpCompleted {
                    op_id: op.op_id,
                    outcome: OpOutcome::Cancelled,
                });
            }
            Err(_) => {
                self.stats.record_failed();
                self.metrics.failed.inc();
                self.obs.emit_traced(at, trace, || EventKind::OpCompleted {
                    op_id: op.op_id,
                    outcome: OpOutcome::Failed,
                });
            }
        }
        // Listeners run under the op's context so any operation the
        // application submits from inside the callback joins the trace
        // as a child hop — the read-then-write chain stays one story.
        match op.completion {
            Completion::Listeners { on_success, on_failure } => match outcome {
                Ok(response) => {
                    drop(on_failure);
                    self.post_listener(move || trace::with(trace, move || on_success(response)));
                }
                Err(failure) => {
                    drop(on_success);
                    self.post_listener(move || trace::with(trace, move || on_failure(failure)));
                }
            },
            Completion::Future => op.core.resolve(outcome),
        }
    }

    /// Terminal delivery for an operation that never entered the queue
    /// (submitted after stop): counted as cancelled, resolved through
    /// its completion without any enqueue/complete event pair.
    fn resolve_unqueued(&self, core: &CoreHandle, completion: Completion, failure: OpFailure) {
        if !core.try_claim() {
            return;
        }
        self.stats.record_cancelled();
        self.metrics.cancelled.inc();
        match completion {
            Completion::Listeners { on_failure, .. } => {
                self.post_listener(move || on_failure(failure));
            }
            Completion::Future => core.resolve(Err(failure)),
        }
    }

    /// Re-enqueues this loop for a poll (or pokes its driver thread).
    pub(crate) fn wake(self: &Arc<Self>) {
        match self.shard.get() {
            Some(shard) => shard.wake(Arc::clone(self) as Arc<dyn PollTask>),
            None => self.signal.notify(),
        }
    }

    /// Empties the queue, failing every op as Cancelled. Runs on the
    /// polling thread once `stopped` is observed; `submit` races are
    /// closed by its own under-lock `stopped` re-check.
    fn drain_all(&self) {
        let drained: Vec<PendingOp> = self.queue.lock().drain(..).collect();
        if drained.is_empty() {
            return;
        }
        let now = self.clock.now();
        for op in drained {
            self.complete(op, now, Err(OpFailure::Cancelled));
        }
    }

    /// Removes cancelled ops from the *whole* queue (not just the head)
    /// and fires their listeners immediately.
    fn sweep_cancelled(&self, now: SimInstant) {
        let swept: Vec<PendingOp> = {
            let mut queue = self.queue.lock();
            if !queue.iter().any(|op| op.core.cancel_requested()) {
                return;
            }
            let mut kept = VecDeque::with_capacity(queue.len());
            let mut swept = Vec::new();
            for op in queue.drain(..) {
                if op.core.cancel_requested() {
                    swept.push(op);
                } else {
                    kept.push_back(op);
                }
            }
            *queue = kept;
            swept
        };
        for op in swept {
            self.complete(op, now, Err(OpFailure::Cancelled));
        }
    }

    /// Pops the head only if it is still the op we just attempted — a
    /// concurrent drain may have removed it, in which case its Cancelled
    /// listener already fired and the response is dropped.
    fn pop_if_head(&self, op_id: u64) -> Option<PendingOp> {
        let mut queue = self.queue.lock();
        if queue.front().is_some_and(|op| op.op_id == op_id) {
            queue.pop_front()
        } else {
            None
        }
    }

    /// Pops the front run of ops whose ids match `head` then `rest` in
    /// order, skipping any id no longer at the front (a concurrent drain
    /// removed it and already fired its Cancelled listener). The ids were
    /// gathered from the queue front under this same lock earlier in the
    /// poll, so whatever survives is still a contiguous prefix in the
    /// same order.
    fn pop_matching(&self, head: u64, rest: &[u64]) -> Vec<PendingOp> {
        let mut queue = self.queue.lock();
        let mut out = Vec::with_capacity(rest.len() + 1);
        for &id in std::iter::once(&head).chain(rest) {
            if queue.front().is_some_and(|op| op.op_id == id) {
                out.push(queue.pop_front().expect("checked front"));
            }
        }
        out
    }

    /// One unit of loop work; see [`LoopPoll`] for the resume contract.
    fn poll_loop(&self) -> LoopPoll {
        if self.stopped.load(Ordering::Acquire) {
            self.drain_all();
            return LoopPoll::Idle;
        }
        let now = self.clock.now();
        self.sweep_cancelled(now);

        enum Step {
            Empty,
            Timeout(PendingOp),
            Blocked(SimInstant),
            /// Attempt one exchange covering the head op plus `rest` —
            /// the queued writes behind it that coalescing collapsed
            /// into this exchange. `rest` stays empty (never allocated)
            /// on the common single-op path, keeping the steady-state
            /// attempt allocation-free.
            Attempt {
                op_id: u64,
                rest: Vec<u64>,
                request: OpRequest,
                deadline: SimInstant,
                /// The head op's causal context: installed as the
                /// polling thread's ambient scope around the exchange so
                /// the attempt — and every physical event the simulator
                /// emits synchronously inside it — joins the op's trace.
                trace: Option<TraceContext>,
            },
        }

        let step = {
            let mut queue = self.queue.lock();
            match queue.front() {
                None => Step::Empty,
                Some(op) if now >= op.deadline => {
                    Step::Timeout(queue.pop_front().expect("checked front"))
                }
                Some(op) => {
                    if self.executor.connected() {
                        let mut rest = Vec::new();
                        let mut request = op.request.clone();
                        // Write coalescing (policy knob): extend the
                        // exchange over the contiguous run of queued
                        // writes behind the head. Every write in this
                        // codec replaces the whole NDEF message — one
                        // region per tag — so the run's net effect is
                        // the *last* write's bytes; one exchange
                        // carrying those bytes completes every op in
                        // the run. The run stops at the first non-write
                        // (a read must observe its predecessor's bytes
                        // on the tag), cancelled op, or expired op, so
                        // FIFO-observable semantics are untouched.
                        if self.policy.coalesce_writes
                            && matches!(op.request, OpRequest::Write(_))
                            && !self.suppress_coalesce.swap(false, Ordering::Relaxed)
                        {
                            let mut last: Option<&Arc<[u8]>> = None;
                            for next in queue.iter().skip(1) {
                                match &next.request {
                                    OpRequest::Write(bytes)
                                        if !next.core.cancel_requested() && now < next.deadline =>
                                    {
                                        rest.push(next.op_id);
                                        last = Some(bytes);
                                    }
                                    _ => break,
                                }
                            }
                            if let Some(bytes) = last {
                                request = OpRequest::Write(Arc::clone(bytes));
                            }
                        }
                        Step::Attempt {
                            op_id: op.op_id,
                            rest,
                            request,
                            deadline: op.deadline,
                            trace: op.trace,
                        }
                    } else {
                        Step::Blocked(op.deadline)
                    }
                }
            }
        };
        match step {
            Step::Empty => LoopPoll::Park,
            Step::Timeout(op) => {
                self.complete(op, now, Err(OpFailure::TimedOut));
                LoopPoll::Runnable
            }
            Step::Blocked(deadline) => LoopPoll::RunnableAt(deadline),
            Step::Attempt { op_id, rest, request, deadline, trace } => {
                let attempt_started = self.clock.now();
                // The head was selected with `now` from the top of the
                // poll; the connectivity probe (or a concurrent clock
                // advance) may have crossed the deadline since. A retry
                // rescheduled for `backoff.min(deadline)` fires at
                // exactly the deadline instant, and once `now >=
                // deadline` the op must complete as TimedOut — never
                // attempt again.
                if attempt_started >= deadline {
                    if let Some(op) = self.pop_if_head(op_id) {
                        self.complete(op, attempt_started, Err(OpFailure::TimedOut));
                    }
                    return LoopPoll::Runnable;
                }
                if self.head_op_id.swap(op_id, Ordering::Relaxed) == op_id {
                    self.head_attempts.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.head_attempts.store(1, Ordering::Relaxed);
                }
                // Ambient scope for the exchange: the executor runs the
                // radio synchronously on this thread, so the simulator's
                // PhysExchange/PhysBeam ground truth — and anything a
                // sender-side executor does (e.g. appending the trace
                // record to a beam payload) — inherits the op's context.
                let outcome = trace::with(trace, || self.executor.execute(&request));
                let finished = self.clock.now();
                let attempt_nanos = finished.saturating_since(attempt_started).as_nanos() as u64;
                self.stats.record_attempt(attempt_nanos);
                self.metrics.attempts.inc();
                self.metrics.attempt_ns.observe(attempt_nanos);
                let attempt_outcome = match &outcome {
                    Ok(_) => AttemptOutcome::Success,
                    Err(e) if e.is_transient() => AttemptOutcome::Transient,
                    Err(_) => AttemptOutcome::Permanent,
                };
                self.obs.emit_traced(finished, trace, || EventKind::OpAttempt {
                    op_id,
                    started_nanos: attempt_started.as_nanos(),
                    duration_nanos: attempt_nanos,
                    outcome: attempt_outcome,
                });
                match outcome {
                    Ok(response) => {
                        if !rest.is_empty() {
                            // One exchange landed the whole coalesced
                            // run: complete every surviving op Ok, in
                            // FIFO order (writes yield `Done`, so no
                            // per-op response needs fabricating).
                            let batch = self.pop_matching(op_id, &rest);
                            let completed = batch.len();
                            for op in batch {
                                self.complete(op, finished, Ok(OpResponse::Done));
                            }
                            if completed > 1 {
                                self.metrics.coalesced_batches.inc();
                                self.metrics.saved_exchanges.add(completed as u64 - 1);
                            }
                        } else if let Some(op) = self.pop_if_head(op_id) {
                            self.complete(op, finished, Ok(response));
                        }
                        LoopPoll::Runnable
                    }
                    Err(e) if e.is_transient() => {
                        // Decoupling in time: the operation stays queued
                        // (a failed coalesced exchange keeps the whole
                        // run queued — nothing was popped). Back off on
                        // the policy's curve; a connectivity
                        // notification re-arms the attempt immediately.
                        self.stats.record_transient_failure();
                        self.metrics.retries.inc();
                        let delay = self.backoff.lock().next_delay(&self.policy.backoff, op_id);
                        self.metrics.backoff_ns.observe(delay.as_nanos() as u64);
                        let backoff = self.clock.now() + delay;
                        LoopPoll::RunnableAt(backoff.min(deadline))
                    }
                    Err(e) => {
                        if !rest.is_empty() {
                            // The failed exchange carried the *last*
                            // write's payload — blaming the head for it
                            // would misattribute (e.g. a follower's
                            // too-large message). Keep everything
                            // queued and re-attempt the head alone; it
                            // earns its own verdict next poll.
                            self.suppress_coalesce.store(true, Ordering::Relaxed);
                        } else if let Some(op) = self.pop_if_head(op_id) {
                            self.complete(op, finished, Err(OpFailure::Failed(e)));
                        }
                        LoopPoll::Runnable
                    }
                }
            }
        }
    }
}

impl PendingOp {
    /// Heap bytes this op drags along beyond its own struct: the
    /// payload buffer. Listener boxes count only their fat pointers
    /// (already inside the struct) — closure environments are opaque,
    /// and in practice a few machine words.
    fn payload_bytes(&self) -> u64 {
        match &self.request {
            OpRequest::Write(bytes) | OpRequest::Push(bytes) => bytes.len() as u64,
            OpRequest::Read | OpRequest::MakeReadOnly => 0,
        }
    }
}

impl MemFootprint for Shared {
    fn mem_bytes(&self) -> u64 {
        let (slots, payloads) = {
            let queue = self.queue.lock();
            let payloads: u64 = queue.iter().map(PendingOp::payload_bytes).sum();
            (queue.capacity() as u64, payloads)
        };
        // A private (thread-per-loop) pool is this loop's weight; a
        // shard's shared pool is accounted by the shard snapshot.
        let pool = if self.shard.get().is_none() { self.pool.mem_bytes() } else { 0 };
        std::mem::size_of::<Shared>() as u64
            + slots * std::mem::size_of::<PendingOp>() as u64
            + payloads
            + pool
            + self.obs.loop_name.capacity() as u64
            + self.obs.target.capacity() as u64
    }
}

impl SnapshotProvider for Shared {
    fn snapshot(&self, now_nanos: u64) -> ComponentSnapshot {
        let (queue_depth, head) = {
            let queue = self.queue.lock();
            let head = queue.front().map(|op| {
                let enqueued = op.enqueued_at.as_nanos();
                // The attempt counter only describes the op the polling
                // thread last worked on; a freshly promoted head reads 0.
                let attempts = if self.head_op_id.load(Ordering::Relaxed) == op.op_id {
                    self.head_attempts.load(Ordering::Relaxed)
                } else {
                    0
                };
                HeadOp {
                    op_id: op.op_id,
                    op: op_kind(&op.request).label(),
                    age_nanos: now_nanos.saturating_sub(enqueued),
                    budget_nanos: op.deadline.as_nanos().saturating_sub(enqueued),
                    attempts,
                }
            });
            (queue.len(), head)
        };
        // Probed outside the queue lock: connectivity may take sim locks.
        ComponentSnapshot::Loop(LoopSnapshot {
            name: self.obs.loop_name.clone(),
            kind: self.obs.kind,
            phone: self.obs.phone,
            target: self.obs.target.clone(),
            queue_depth,
            connected: self.executor.connected(),
            head,
            mem_bytes: self.mem_bytes(),
            policy: self.policy.info(),
        })
    }
}

impl PollTask for Shared {
    fn poll(&self) -> LoopPoll {
        self.poll_loop()
    }

    fn try_schedule(&self) -> bool {
        !self.scheduled.swap(true, Ordering::AcqRel)
    }

    fn clear_scheduled(&self) {
        self.scheduled.store(false, Ordering::Release);
    }
}

/// Handle to a running event loop. Cloning shares the loop; the loop
/// stops when [`EventLoop::stop`] is called or every handle is dropped.
#[derive(Clone)]
pub(crate) struct EventLoop {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for EventLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoop").field("queued", &self.queue_len()).finish()
    }
}

impl EventLoop {
    /// Creates the loop state machine and attaches it to `exec`: under
    /// the sharded policy it is pinned to a shard of the worker pool (no
    /// thread is spawned); under thread-per-loop a dedicated driver
    /// thread `morena-loop-{name}` is started.
    pub(crate) fn spawn(
        name: &str,
        exec: &Execution,
        clock: Arc<dyn Clock>,
        handler: Handler,
        policy: Policy,
        executor: impl OpExecutor,
        obs: ObsScope,
    ) -> EventLoop {
        let metrics = LoopMetrics::resolve(&obs.recorder);
        // Resolve the completion-core pool up front: loops pinned to a
        // shard share that shard's pool (cores recycle across all of
        // them); a dedicated-driver loop gets a private one.
        let (shard, pool) = match exec {
            Execution::Sharded(scheduler) => {
                let shard = scheduler.assign();
                let pool = shard.pool();
                (Some(shard), pool)
            }
            Execution::ThreadPerLoop => (None, OpPool::new()),
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            signal: Arc::new(WaitSignal::new()),
            stopped: AtomicBool::new(false),
            scheduled: AtomicBool::new(false),
            shard: OnceLock::new(),
            pool,
            clock,
            handler,
            stats: Arc::new(OpStats::default()),
            policy,
            // Seeded from the loop's name: jitter is reproducible per
            // loop across runs, distinct across loops (the anti-lock-
            // step property).
            backoff: Mutex::new(BackoffState::new(JitterRng::from_name(name))),
            executor: Box::new(executor),
            obs,
            metrics,
            head_op_id: AtomicU64::new(u64::MAX),
            head_attempts: AtomicU64::new(0),
            suppress_coalesce: AtomicBool::new(false),
        });
        shared
            .obs
            .recorder
            .inspector()
            .register(&shared.obs.loop_name, Arc::downgrade(&shared) as Weak<dyn SnapshotProvider>);
        match shard {
            Some(shard) => {
                let _ = shared.shard.set(shard);
            }
            None => {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("morena-loop-{name}"))
                    // Small stacks keep the paper-literal policy viable at
                    // bench scale (the loop never recurses deeply).
                    .stack_size(256 * 1024)
                    .spawn(move || drive(&shared))
                    .expect("spawn event loop");
            }
        }
        EventLoop { shared }
    }

    /// Enqueues an operation with an explicit timeout and the given
    /// completion mode, returning the caller's handle onto its pooled
    /// completion core.
    ///
    /// If the loop has been stopped the operation resolves immediately
    /// with [`OpFailure::Cancelled`] (the listener fires, or the future
    /// resolves — nothing ever hangs on a dead loop).
    fn submit_with(
        &self,
        request: OpRequest,
        timeout: Option<Duration>,
        completion: Completion,
    ) -> CoreHandle {
        let shared = &self.shared;
        let core = shared.pool.acquire();
        let handle = core.clone();
        if shared.stopped.load(Ordering::Acquire) {
            shared.resolve_unqueued(&core, completion, OpFailure::Cancelled);
            return handle;
        }
        let timeout = timeout.unwrap_or_else(|| shared.policy.timeout_for(op_kind(&request)));
        let now = shared.clock.now();
        let deadline = now + timeout;
        let op_id = shared.obs.recorder.next_op_id();
        let trace = shared.mint_trace();
        shared.stats.record_submitted();
        shared.metrics.submitted.inc();
        shared.obs.emit_traced(now, trace, || EventKind::OpEnqueued {
            op_id,
            loop_name: shared.obs.loop_name.clone(),
            phone: shared.obs.phone,
            target: shared.obs.target.clone(),
            op: op_kind(&request),
            deadline_nanos: deadline.as_nanos(),
        });
        let mut op =
            Some(PendingOp { op_id, request, deadline, enqueued_at: now, core, completion, trace });
        {
            // Re-check `stopped` under the queue lock: the stop-side drain
            // also takes this lock, so either our push lands before the
            // drain (and is cancelled by it) or we observe the flag here
            // and never push — the op can no longer be stranded in a queue
            // nobody will ever poll again.
            let mut queue = shared.queue.lock();
            if !shared.stopped.load(Ordering::Acquire) {
                queue.push_back(op.take().expect("set above"));
            }
        }
        match op {
            None => shared.wake(),
            Some(op) => shared.complete(op, shared.clock.now(), Err(OpFailure::Cancelled)),
        }
        handle
    }

    /// Enqueues an operation with the paper's listener-pair completion.
    ///
    /// If the loop has been stopped the failure listener fires (on the
    /// main thread) with [`OpFailure::Cancelled`].
    pub(crate) fn submit(
        &self,
        request: OpRequest,
        timeout: Option<Duration>,
        on_success: Box<dyn FnOnce(OpResponse) + Send>,
        on_failure: Box<dyn FnOnce(OpFailure) + Send>,
    ) -> OpTicket {
        let core =
            self.submit_with(request, timeout, Completion::Listeners { on_success, on_failure });
        OpTicket::new(core, Arc::downgrade(&self.shared))
    }

    /// Enqueues an operation resolved through a future instead of
    /// listeners. Dropping the returned future withdraws the operation.
    pub(crate) fn submit_future(&self, request: OpRequest, timeout: Option<Duration>) -> OpFuture {
        let task = Arc::downgrade(&self.shared);
        let core = self.submit_with(request, timeout, Completion::Future);
        OpFuture::new(core, task)
    }

    /// Wakes the loop so it re-examines connectivity — called by the
    /// owner when discovery events arrive for this reference.
    pub(crate) fn wake(&self) {
        self.shared.wake();
    }

    /// A ticket for an operation that never entered the queue (e.g. it
    /// failed conversion); cancelling it is a no-op.
    pub(crate) fn dead_ticket(&self) -> OpTicket {
        OpTicket::dead()
    }

    /// Number of operations still queued (including the one currently
    /// being attempted).
    pub(crate) fn queue_len(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// Lifetime statistics.
    pub(crate) fn stats(&self) -> Arc<OpStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Best-effort deep bytes of the loop state machine (queue slots,
    /// pending payloads, name strings) — see [`MemFootprint`].
    pub(crate) fn mem_bytes(&self) -> u64 {
        self.shared.mem_bytes()
    }

    /// Whether [`EventLoop::stop`] has been called. A stopped loop never
    /// completes another operation, so its owner is dead weight — the
    /// discovery layer uses this to sweep closed references.
    pub(crate) fn is_stopped(&self) -> bool {
        self.shared.stopped.load(Ordering::Acquire)
    }

    /// Stops the loop: queued operations fail with
    /// [`OpFailure::Cancelled`]; the next poll drains the queue and the
    /// loop goes permanently idle (its driver thread, if any, exits).
    pub(crate) fn stop(&self) {
        self.shared.stopped.store(true, Ordering::Release);
        self.shared.wake();
    }
}

/// The thread-per-loop driver: the same poll state machine, parked on
/// the loop's own [`WaitSignal`] between polls.
fn drive(shared: &Arc<Shared>) {
    loop {
        // Read the generation *before* polling so a notification racing
        // with the poll cuts the park short.
        let generation = shared.signal.generation();
        if shared.stopped.load(Ordering::Acquire) {
            shared.poll_loop(); // drains and fires Cancelled listeners
            return;
        }
        match shared.poll_loop() {
            LoopPoll::Runnable => {}
            LoopPoll::RunnableAt(deadline) => {
                shared.clock.wait_until(&shared.signal, generation, deadline);
            }
            LoopPoll::Park => {
                shared.clock.wait_until(&shared.signal, generation, SimInstant::FAR_FUTURE);
            }
            LoopPoll::Idle => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Backoff;
    use crate::sched::ExecutionPolicy;
    use crossbeam::channel::{unbounded, Receiver, Sender};
    use morena_android_sim::looper::MainThread;
    use morena_nfc_sim::clock::{SystemClock, VirtualClock};
    use morena_nfc_sim::error::LinkError;

    /// An executor scripted from the test: pops canned results.
    struct Scripted {
        connected: Arc<AtomicBool>,
        results: Arc<Mutex<VecDeque<Result<OpResponse, NfcOpError>>>>,
        executed: Sender<OpRequest>,
    }

    impl OpExecutor for Scripted {
        fn connected(&self) -> bool {
            self.connected.load(Ordering::SeqCst)
        }
        fn execute(&self, request: &OpRequest) -> Result<OpResponse, NfcOpError> {
            let _ = self.executed.send(request.clone());
            self.results.lock().pop_front().unwrap_or(Ok(OpResponse::Done))
        }
    }

    fn both_policies(test: impl Fn(ExecutionPolicy)) {
        test(ExecutionPolicy::ThreadPerLoop);
        test(ExecutionPolicy::Sharded { workers: 2 });
    }

    struct Fixture {
        main: MainThread,
        // Keeps the worker pool alive for the fixture's lifetime.
        _exec: Execution,
        event_loop: EventLoop,
        connected: Arc<AtomicBool>,
        results: Arc<Mutex<VecDeque<Result<OpResponse, NfcOpError>>>>,
        executed: Receiver<OpRequest>,
        outcomes: Receiver<Result<OpResponse, OpFailure>>,
        outcome_tx: Sender<Result<OpResponse, OpFailure>>,
    }

    impl Fixture {
        fn new(clock: Arc<dyn Clock>, config: Policy) -> Fixture {
            Fixture::build(ExecutionPolicy::default(), clock, config, ObsScope::detached("test"))
        }

        fn with_policy(policy: ExecutionPolicy, clock: Arc<dyn Clock>, config: Policy) -> Fixture {
            Fixture::build(policy, clock, config, ObsScope::detached("test"))
        }

        fn with_scope(clock: Arc<dyn Clock>, config: Policy, scope: ObsScope) -> Fixture {
            Fixture::build(ExecutionPolicy::default(), clock, config, scope)
        }

        fn build(
            policy: ExecutionPolicy,
            clock: Arc<dyn Clock>,
            config: Policy,
            scope: ObsScope,
        ) -> Fixture {
            let main = MainThread::spawn();
            let exec = Execution::new(policy, Arc::clone(&clock), &scope.recorder);
            let connected = Arc::new(AtomicBool::new(true));
            let results = Arc::new(Mutex::new(VecDeque::new()));
            let (exec_tx, executed) = unbounded();
            let (outcome_tx, outcomes) = unbounded();
            let event_loop = EventLoop::spawn(
                "test",
                &exec,
                clock,
                main.handler(),
                config,
                Scripted {
                    connected: Arc::clone(&connected),
                    results: Arc::clone(&results),
                    executed: exec_tx,
                },
                scope,
            );
            Fixture {
                main,
                _exec: exec,
                event_loop,
                connected,
                results,
                executed,
                outcomes,
                outcome_tx,
            }
        }

        fn submit(&self, request: OpRequest, timeout: Option<Duration>) -> OpTicket {
            let ok = self.outcome_tx.clone();
            let err = self.outcome_tx.clone();
            self.event_loop.submit(
                request,
                timeout,
                Box::new(move |r| {
                    ok.send(Ok(r)).unwrap();
                }),
                Box::new(move |f| {
                    err.send(Err(f)).unwrap();
                }),
            )
        }

        fn next_outcome(&self) -> Result<OpResponse, OpFailure> {
            self.outcomes.recv_timeout(Duration::from_secs(10)).expect("outcome in time")
        }
    }

    #[test]
    fn ops_complete_in_fifo_order() {
        both_policies(|policy| {
            let f = Fixture::with_policy(policy, Arc::new(SystemClock::new()), Policy::default());
            for i in 0..5u8 {
                f.results.lock().push_back(Ok(OpResponse::Bytes(vec![i])));
                f.submit(OpRequest::Read, None);
            }
            for i in 0..5u8 {
                assert_eq!(f.next_outcome().unwrap(), OpResponse::Bytes(vec![i]));
            }
            let stats = f.event_loop.stats().snapshot();
            assert_eq!(stats.submitted, 5);
            assert_eq!(stats.succeeded, 5);
            assert_eq!(stats.attempts, 5);
            // Keep the main thread alive until outcomes delivered.
            f.main.run_sync(|| {});
        });
    }

    #[test]
    fn transient_failures_are_retried_until_success() {
        both_policies(|policy| {
            let f = Fixture::with_policy(
                policy,
                Arc::new(SystemClock::new()),
                Policy::new().with_backoff(Backoff::constant(Duration::from_millis(1))),
            );
            {
                let mut results = f.results.lock();
                results.push_back(Err(NfcOpError::Link(LinkError::TransmissionError)));
                results.push_back(Err(NfcOpError::Link(LinkError::TransmissionError)));
                results.push_back(Ok(OpResponse::Done));
            }
            f.submit(OpRequest::Write(vec![1].into()), None);
            assert_eq!(f.next_outcome().unwrap(), OpResponse::Done);
            let stats = f.event_loop.stats().snapshot();
            assert_eq!(stats.attempts, 3);
            assert_eq!(stats.transient_failures, 2);
            assert_eq!(stats.succeeded, 1);
        });
    }

    #[test]
    fn permanent_failures_fire_failure_listener_immediately() {
        let f = Fixture::new(Arc::new(SystemClock::new()), Policy::default());
        f.results.lock().push_back(Err(NfcOpError::ReadOnly));
        f.submit(OpRequest::Write(vec![1].into()), None);
        assert_eq!(f.next_outcome().unwrap_err(), OpFailure::Failed(NfcOpError::ReadOnly));
        let stats = f.event_loop.stats().snapshot();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn disconnected_ops_wait_and_flush_on_reconnect() {
        both_policies(|policy| {
            let f = Fixture::with_policy(policy, Arc::new(SystemClock::new()), Policy::default());
            f.connected.store(false, Ordering::SeqCst);
            for _ in 0..3 {
                f.submit(OpRequest::Write(vec![7].into()), None);
            }
            // Nothing executes while disconnected.
            assert!(f.executed.recv_timeout(Duration::from_millis(50)).is_err());
            assert_eq!(f.event_loop.queue_len(), 3);
            // Reconnect: the whole batch flushes (EXT-BATCH behaviour).
            f.connected.store(true, Ordering::SeqCst);
            f.event_loop.wake();
            for _ in 0..3 {
                assert!(f.next_outcome().is_ok());
            }
            assert_eq!(f.event_loop.queue_len(), 0);
        });
    }

    #[test]
    fn head_op_times_out_while_disconnected_then_next_proceeds() {
        both_policies(|policy| {
            let clock = Arc::new(VirtualClock::with_auto_advance(false));
            let f =
                Fixture::with_policy(policy, clock.clone() as Arc<dyn Clock>, Policy::default());
            f.connected.store(false, Ordering::SeqCst);
            f.submit(OpRequest::Read, Some(Duration::from_secs(1)));
            f.submit(OpRequest::Read, Some(Duration::from_secs(60)));
            // Rendezvous: block until the loop is actually parked on the
            // head deadline, then pass it.
            clock.await_waiters(1);
            clock.advance(Duration::from_secs(2));
            assert_eq!(f.next_outcome().unwrap_err(), OpFailure::TimedOut);
            // Second op is now head and still pending; reconnect completes it.
            f.connected.store(true, Ordering::SeqCst);
            f.event_loop.wake();
            assert!(f.next_outcome().is_ok());
            let stats = f.event_loop.stats().snapshot();
            assert_eq!(stats.timed_out, 1);
            assert_eq!(stats.succeeded, 1);
        });
    }

    #[test]
    fn attempt_never_fires_at_or_past_the_deadline() {
        use std::sync::atomic::AtomicU64;

        // Satellite regression: the head is selected with `now` read at
        // the top of the poll; if time crosses the deadline before the
        // attempt starts (here: while probing connectivity), the op must
        // time out without executing. `RunnableAt(backoff.min(deadline))`
        // deliberately lets a retry poll fire at exactly the deadline
        // instant — the attempt-time re-check is what keeps that poll
        // from attempting one time too many.
        struct DeadlineCrosser {
            clock: Arc<VirtualClock>,
            executes: Arc<AtomicU64>,
        }
        impl OpExecutor for DeadlineCrosser {
            fn connected(&self) -> bool {
                // Cross the deadline between head selection and the
                // attempt. Only non-empty polls probe connectivity, so
                // the advances stay bounded.
                self.clock.advance(Duration::from_secs(2));
                true
            }
            fn execute(&self, _request: &OpRequest) -> Result<OpResponse, NfcOpError> {
                self.executes.fetch_add(1, Ordering::SeqCst);
                Ok(OpResponse::Done)
            }
        }

        both_policies(|policy| {
            let main = MainThread::spawn();
            let clock = Arc::new(VirtualClock::with_auto_advance(false));
            let recorder = Recorder::new();
            let exec = Execution::new(policy, clock.clone() as Arc<dyn Clock>, &recorder);
            let executes = Arc::new(AtomicU64::new(0));
            let event_loop = EventLoop::spawn(
                "deadline",
                &exec,
                clock.clone() as Arc<dyn Clock>,
                main.handler(),
                Policy::default(),
                DeadlineCrosser { clock: Arc::clone(&clock), executes: Arc::clone(&executes) },
                ObsScope::detached("deadline"),
            );
            let (tx, rx) = unbounded();
            event_loop.submit(
                OpRequest::Read,
                Some(Duration::from_secs(1)),
                Box::new(|_| panic!("must not succeed past the deadline")),
                Box::new(move |f| tx.send(f).unwrap()),
            );
            assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), OpFailure::TimedOut);
            assert_eq!(executes.load(Ordering::SeqCst), 0, "no attempt at or past the deadline");
            assert_eq!(event_loop.stats().snapshot().timed_out, 1);
            event_loop.stop();
        });
    }

    #[test]
    fn stop_cancels_queued_ops() {
        both_policies(|policy| {
            let f = Fixture::with_policy(policy, Arc::new(SystemClock::new()), Policy::default());
            f.connected.store(false, Ordering::SeqCst);
            f.submit(OpRequest::Read, None);
            f.submit(OpRequest::Read, None);
            f.event_loop.stop();
            assert_eq!(f.next_outcome().unwrap_err(), OpFailure::Cancelled);
            assert_eq!(f.next_outcome().unwrap_err(), OpFailure::Cancelled);
            // Submissions after stop are cancelled immediately.
            f.submit(OpRequest::Read, None);
            assert_eq!(f.next_outcome().unwrap_err(), OpFailure::Cancelled);
            assert_eq!(f.event_loop.stats().snapshot().cancelled, 3);
        });
    }

    #[test]
    fn submit_stop_race_always_fires_the_listener() {
        // Satellite regression: `submit` used to check `stopped` before
        // taking the queue lock, so a stop-side drain could slip between
        // the check and the push — the op was enqueued into a dead queue
        // and its listeners never fired. Loop the interleaving hard.
        both_policies(|policy| {
            let main = MainThread::spawn();
            let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
            let recorder = Recorder::new();
            let exec = Execution::new(policy, Arc::clone(&clock), &recorder);
            for i in 0..500 {
                let event_loop = EventLoop::spawn(
                    &format!("race-{i}"),
                    &exec,
                    Arc::clone(&clock),
                    main.handler(),
                    Policy::default(),
                    Scripted {
                        connected: Arc::new(AtomicBool::new(false)),
                        results: Arc::new(Mutex::new(VecDeque::new())),
                        executed: unbounded().0,
                    },
                    ObsScope::detached("race"),
                );
                let (tx, rx) = unbounded();
                let stopper = {
                    let event_loop = event_loop.clone();
                    std::thread::spawn(move || event_loop.stop())
                };
                let ok_tx = tx.clone();
                event_loop.submit(
                    OpRequest::Read,
                    None,
                    Box::new(move |_| ok_tx.send("success").unwrap()),
                    Box::new(move |f| {
                        assert_eq!(f, OpFailure::Cancelled);
                        tx.send("cancelled").unwrap();
                    }),
                );
                stopper.join().unwrap();
                // Exactly one listener fires, no matter the interleaving.
                assert_eq!(
                    rx.recv_timeout(Duration::from_secs(10)).expect("listener fired"),
                    "cancelled"
                );
                assert!(rx.try_recv().is_err(), "no double delivery");
            }
        });
    }

    #[test]
    fn cancelled_non_head_ops_are_swept_immediately() {
        // Satellite regression: a cancelled op at position k used to keep
        // its slot (and delay its Cancelled callback) until everything
        // ahead of it completed.
        both_policies(|policy| {
            let f = Fixture::with_policy(policy, Arc::new(SystemClock::new()), Policy::default());
            f.connected.store(false, Ordering::SeqCst);
            f.submit(OpRequest::Read, None);
            let middle = f.submit(OpRequest::Write(vec![1].into()), None);
            f.submit(OpRequest::MakeReadOnly, None);
            assert_eq!(f.event_loop.queue_len(), 3);
            // The head stays blocked (disconnected), yet cancelling the
            // middle op must fire its listener right away.
            assert!(middle.cancel());
            assert_eq!(f.next_outcome().unwrap_err(), OpFailure::Cancelled);
            assert_eq!(f.event_loop.queue_len(), 2, "the swept op freed its slot");
            assert_eq!(f.event_loop.stats().snapshot().cancelled, 1);
            // The remaining ops are untouched and complete on reconnect.
            f.connected.store(true, Ordering::SeqCst);
            f.event_loop.wake();
            assert!(f.next_outcome().is_ok());
            assert!(f.next_outcome().is_ok());
            assert_eq!(f.event_loop.queue_len(), 0);
        });
    }

    fn scoped_fixture(policy: Policy, name: &str) -> (Arc<Recorder>, Fixture) {
        let recorder = Arc::new(Recorder::new());
        let scope = ObsScope {
            recorder: Arc::clone(&recorder),
            loop_name: name.to_owned(),
            kind: "test",
            phone: 0,
            target: name.to_owned(),
        };
        let f = Fixture::with_scope(Arc::new(SystemClock::new()), policy, scope);
        (recorder, f)
    }

    #[test]
    fn coalesced_writes_flush_in_one_exchange() {
        both_policies(|exec_policy| {
            let recorder = Arc::new(Recorder::new());
            let scope = ObsScope {
                recorder: Arc::clone(&recorder),
                loop_name: "co".into(),
                kind: "test",
                phone: 0,
                target: "co".into(),
            };
            let f = Fixture::build(
                exec_policy,
                Arc::new(SystemClock::new()),
                Policy::new().with_coalesce_writes(true),
                scope,
            );
            f.connected.store(false, Ordering::SeqCst);
            for i in 1..=3u8 {
                f.submit(OpRequest::Write(vec![i].into()), None);
            }
            f.connected.store(true, Ordering::SeqCst);
            f.event_loop.wake();
            for _ in 0..3 {
                assert_eq!(f.next_outcome().unwrap(), OpResponse::Done);
            }
            // The whole run flushed as ONE exchange carrying the last
            // write's bytes.
            assert_eq!(
                f.executed.recv_timeout(Duration::from_secs(5)).unwrap(),
                OpRequest::Write(vec![3].into())
            );
            assert!(f.executed.try_recv().is_err(), "no further exchanges");
            let metrics = recorder.metrics().snapshot();
            assert_eq!(metrics.counter("coalesce.batches"), 1);
            assert_eq!(metrics.counter("coalesce.saved_exchanges"), 2);
            assert_eq!(f.event_loop.stats().snapshot().succeeded, 3);
        });
    }

    #[test]
    fn coalescing_stops_at_a_non_write_boundary() {
        // A read between writes must observe its predecessor's bytes on
        // the tag, so the run may not coalesce across it.
        let (recorder, f) = scoped_fixture(Policy::new().with_coalesce_writes(true), "boundary");
        f.connected.store(false, Ordering::SeqCst);
        {
            let mut results = f.results.lock();
            results.push_back(Ok(OpResponse::Done)); // write batch [1,2]
            results.push_back(Ok(OpResponse::Bytes(vec![9]))); // read
            results.push_back(Ok(OpResponse::Done)); // trailing write
        }
        f.submit(OpRequest::Write(vec![1].into()), None);
        f.submit(OpRequest::Write(vec![2].into()), None);
        f.submit(OpRequest::Read, None);
        f.submit(OpRequest::Write(vec![3].into()), None);
        f.connected.store(true, Ordering::SeqCst);
        f.event_loop.wake();
        // FIFO outcomes: two coalesced writes, the read's bytes, the
        // trailing write.
        assert_eq!(f.next_outcome().unwrap(), OpResponse::Done);
        assert_eq!(f.next_outcome().unwrap(), OpResponse::Done);
        assert_eq!(f.next_outcome().unwrap(), OpResponse::Bytes(vec![9]));
        assert_eq!(f.next_outcome().unwrap(), OpResponse::Done);
        let exchanges: Vec<OpRequest> = f.executed.try_iter().collect();
        assert_eq!(
            exchanges,
            vec![
                OpRequest::Write(vec![2].into()),
                OpRequest::Read,
                OpRequest::Write(vec![3].into()),
            ]
        );
        assert_eq!(recorder.metrics().snapshot().counter("coalesce.saved_exchanges"), 1);
    }

    #[test]
    fn failed_coalesced_batch_falls_back_to_per_op_verdicts() {
        // A permanently failed batch exchange carried the *last* payload
        // — the head must not inherit that verdict. The loop retries the
        // head alone; here the solo attempt succeeds, proving no op was
        // misattributed.
        let (_recorder, f) = scoped_fixture(Policy::new().with_coalesce_writes(true), "fallback");
        f.connected.store(false, Ordering::SeqCst);
        {
            let mut results = f.results.lock();
            results.push_back(Err(NfcOpError::ReadOnly)); // batch [1,2] fails
            results.push_back(Ok(OpResponse::Done)); // head solo succeeds
            results.push_back(Ok(OpResponse::Done)); // follower succeeds
        }
        f.submit(OpRequest::Write(vec![1].into()), None);
        f.submit(OpRequest::Write(vec![2].into()), None);
        f.connected.store(true, Ordering::SeqCst);
        f.event_loop.wake();
        assert_eq!(f.next_outcome().unwrap(), OpResponse::Done);
        assert_eq!(f.next_outcome().unwrap(), OpResponse::Done);
        let exchanges: Vec<OpRequest> = f.executed.try_iter().collect();
        assert_eq!(
            exchanges,
            vec![
                OpRequest::Write(vec![2].into()), // the failed batch
                OpRequest::Write(vec![1].into()), // head alone
                OpRequest::Write(vec![2].into()), // follower alone
            ]
        );
        assert_eq!(f.event_loop.stats().snapshot().failed, 0, "nobody inherited the batch verdict");
    }

    #[test]
    fn backoff_delays_land_in_the_policy_histogram() {
        let (recorder, f) = scoped_fixture(
            Policy::new().with_backoff(Backoff::exponential(
                Duration::from_micros(100),
                Duration::from_millis(2),
            )),
            "hist",
        );
        {
            let mut results = f.results.lock();
            results.push_back(Err(NfcOpError::Link(LinkError::TransmissionError)));
            results.push_back(Err(NfcOpError::Link(LinkError::TransmissionError)));
            results.push_back(Ok(OpResponse::Done));
        }
        f.submit(OpRequest::Write(vec![1].into()), None);
        assert!(f.next_outcome().is_ok());
        let metrics = recorder.metrics().snapshot();
        let hist = metrics.histogram("policy.backoff_ns").expect("backoff histogram");
        assert_eq!(hist.count(), 2, "one delay recorded per transient failure");
    }

    #[test]
    fn per_op_timeout_overrides_drive_the_deadline() {
        both_policies(|exec_policy| {
            let clock = Arc::new(VirtualClock::with_auto_advance(false));
            let f = Fixture::with_policy(
                exec_policy,
                clock.clone() as Arc<dyn Clock>,
                Policy::new()
                    .with_timeout(Duration::from_secs(60))
                    .with_write_timeout(Duration::from_secs(1)),
            );
            f.connected.store(false, Ordering::SeqCst);
            // No explicit timeout: the write-specific budget applies.
            f.submit(OpRequest::Write(vec![1].into()), None);
            clock.await_waiters(1);
            clock.advance(Duration::from_secs(2));
            assert_eq!(f.next_outcome().unwrap_err(), OpFailure::TimedOut);
        });
    }

    #[test]
    fn listeners_run_on_the_main_thread() {
        let main = MainThread::spawn();
        let main_id = main.thread_id();
        let (tx, rx) = unbounded();
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let recorder = Recorder::new();
        let exec = Execution::new(ExecutionPolicy::default(), Arc::clone(&clock), &recorder);
        let event_loop = EventLoop::spawn(
            "thread-check",
            &exec,
            clock,
            main.handler(),
            Policy::default(),
            Scripted {
                connected: Arc::new(AtomicBool::new(true)),
                results: Arc::new(Mutex::new(VecDeque::new())),
                executed: unbounded().0,
            },
            ObsScope::detached("thread-check"),
        );
        event_loop.submit(
            OpRequest::Read,
            None,
            Box::new(move |_| {
                tx.send(std::thread::current().id()).unwrap();
            }),
            Box::new(|_| {}),
        );
        let ran_on = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(ran_on, main_id);
    }

    #[test]
    fn latency_aggregates_accumulate() {
        let f = Fixture::new(Arc::new(SystemClock::new()), Policy::default());
        for _ in 0..3 {
            f.results.lock().push_back(Ok(OpResponse::Done));
            f.submit(OpRequest::Read, None);
            assert!(f.next_outcome().is_ok());
        }
        let stats = f.event_loop.stats().snapshot();
        assert_eq!(stats.succeeded, 3);
        // Completion latency includes queueing; attempts were instant but
        // the clock is real, so totals are monotone and means exist.
        assert!(stats.mean_attempt().is_some());
        assert!(stats.mean_completion().is_some());
        assert!(
            stats.completion_nanos_total >= stats.attempt_nanos_total
                || stats.attempt_nanos_total < 1_000_000
        );
        assert!(stats.attempt_nanos_max <= stats.attempt_nanos_total.max(stats.attempt_nanos_max));
        // Empty stats have no means.
        let empty = OpStatsSnapshot::default();
        assert_eq!(empty.mean_attempt(), None);
        assert_eq!(empty.mean_completion(), None);
    }

    #[test]
    fn op_lifecycle_events_carry_one_correlation_id() {
        let recorder = Arc::new(Recorder::new());
        let ring = Arc::new(morena_obs::RingSink::new(64));
        recorder.install(ring.clone());
        let scope = ObsScope {
            recorder: Arc::clone(&recorder),
            loop_name: "tag-x".into(),
            kind: "test",
            phone: 7,
            target: "tag-x".into(),
        };
        let f = Fixture::with_scope(
            Arc::new(SystemClock::new()),
            Policy::new().with_backoff(Backoff::constant(Duration::from_millis(1))),
            scope,
        );
        {
            let mut results = f.results.lock();
            results.push_back(Err(NfcOpError::Link(LinkError::TransmissionError)));
            results.push_back(Ok(OpResponse::Done));
        }
        f.submit(OpRequest::Write(vec![1].into()), None);
        assert!(f.next_outcome().is_ok());

        // enqueue, failed attempt, retried attempt, completion — all
        // stamped with the same correlation id.
        let events = ring.snapshot();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.type_label()).collect();
        assert_eq!(kinds, ["op_enqueued", "op_attempt", "op_attempt", "op_completed"]);
        let op_ids: Vec<u64> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::OpEnqueued { op_id, .. }
                | EventKind::OpAttempt { op_id, .. }
                | EventKind::OpCompleted { op_id, .. } => Some(*op_id),
                _ => None,
            })
            .collect();
        assert_eq!(op_ids.len(), 4);
        assert!(op_ids.iter().all(|&id| id == op_ids[0]));
        match &events[1].kind {
            EventKind::OpAttempt { outcome, .. } => assert_eq!(*outcome, AttemptOutcome::Transient),
            other => panic!("unexpected event {other:?}"),
        }
        match &events[3].kind {
            EventKind::OpCompleted { outcome, .. } => assert_eq!(*outcome, OpOutcome::Succeeded),
            other => panic!("unexpected event {other:?}"),
        }

        // The loop's metric counters agree with its OpStats.
        let metrics = recorder.metrics().snapshot();
        assert_eq!(metrics.counter("ops.submitted"), 1);
        assert_eq!(metrics.counter("ops.attempts"), 2);
        assert_eq!(metrics.counter("ops.retries"), 1);
        assert_eq!(metrics.counter("ops.succeeded"), 1);
        assert_eq!(metrics.histogram("op.attempt_ns").unwrap().count(), 2);
        assert_eq!(metrics.histogram("op.completion_ns").unwrap().count(), 1);
    }

    #[test]
    fn scheduler_metrics_record_polls_and_parks() {
        let recorder = Arc::new(Recorder::new());
        let scope = ObsScope {
            recorder: Arc::clone(&recorder),
            loop_name: "sched".into(),
            kind: "test",
            phone: 0,
            target: "sched".into(),
        };
        let f = Fixture::build(
            ExecutionPolicy::Sharded { workers: 2 },
            Arc::new(SystemClock::new()),
            Policy::default(),
            scope,
        );
        f.results.lock().push_back(Ok(OpResponse::Done));
        f.submit(OpRequest::Read, None);
        assert!(f.next_outcome().is_ok());
        let metrics = recorder.metrics().snapshot();
        assert!(metrics.counter("scheduler.polls") >= 1, "at least one poll happened");
        assert!(metrics.counter("scheduler.wakeups") >= 1, "the submit wake was counted");
        assert!(metrics.histogram("scheduler.poll_ns").unwrap().count() >= 1);
        assert_eq!(metrics.gauge("scheduler.shard_depth"), 0, "queues drained");
    }

    #[test]
    fn mem_footprint_grows_with_queued_payloads() {
        let f = Fixture::new(Arc::new(SystemClock::new()), Policy::default());
        f.connected.store(false, Ordering::SeqCst);
        let empty = f.event_loop.shared.mem_bytes();
        assert!(empty >= std::mem::size_of::<Shared>() as u64);
        for _ in 0..16 {
            f.submit(OpRequest::Write(vec![0u8; 1024].into()), None);
        }
        let populated = f.event_loop.shared.mem_bytes();
        assert!(
            populated >= empty + 16 * 1024,
            "populated queue must outweigh the empty one: {populated} vs {empty}"
        );
        // The snapshot surfaces the same figure.
        match f.event_loop.shared.snapshot(0) {
            ComponentSnapshot::Loop(l) => assert_eq!(l.mem_bytes, populated),
            other => panic!("unexpected snapshot {other:?}"),
        }
    }

    #[test]
    fn failure_display_is_nonempty() {
        for f in [
            OpFailure::TimedOut,
            OpFailure::Failed(NfcOpError::NotNdef),
            OpFailure::InvalidData(ConvertError::Json("e".into())),
            OpFailure::Cancelled,
        ] {
            assert!(!f.to_string().is_empty());
        }
    }
}
