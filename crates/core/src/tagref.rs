//! The tag reference abstraction (§3.2 of the paper): a **first-class far
//! reference** to an RFID tag.
//!
//! A [`TagReference`] encapsulates:
//!
//! * the identity of one physical tag (its UID);
//! * a private event loop — a green loop on the context's worker pool
//!   (or a dedicated thread under the paper-literal
//!   [`ExecutionPolicy::ThreadPerLoop`](crate::sched::ExecutionPolicy)) —
//!   processing queued asynchronous read/write operations strictly in
//!   order;
//! * automatic retry of operations while the tag is out of range
//!   (decoupling in time), bounded by per-operation timeouts;
//! * a data converter, so application values — not byte buffers — flow
//!   through the API;
//! * a cache of the last value seen on the tag, for synchronous access
//!   (with the paper's caveat: another device may have changed the tag
//!   since; use an asynchronous read when it matters).
//!
//! Listeners fire on the application's main thread, so no user code needs
//! manual concurrency management.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Duration;

use morena_ndef::NdefMessage;
use morena_nfc_sim::clock::SimInstant;
use morena_nfc_sim::controller::NfcHandle;
use morena_nfc_sim::error::NfcOpError;
use morena_nfc_sim::tag::{TagTech, TagUid};
use morena_nfc_sim::world::NfcEvent;
use morena_obs::MemFootprint;
use parking_lot::Mutex;

use crate::context::MorenaContext;
use crate::convert::TagDataConverter;
use crate::eventloop::{
    EventLoop, ObsScope, OpExecutor, OpFailure, OpRequest, OpResponse, OpStats, OpTicket,
};
use crate::future::{block_on, OpFuture, UnitFuture};
use crate::policy::Policy;
use crate::router::RouteGuard;

/// The physical executor behind a tag reference: blocking NDEF operations
/// against one tag over the lossy link, hardened against the radio's
/// nastier failure modes (lost responses, torn writes, corruption).
struct TagExecutor {
    nfc: NfcHandle,
    uid: TagUid,
}

impl OpExecutor for TagExecutor {
    fn connected(&self) -> bool {
        self.nfc.tag_in_range(self.uid)
    }

    fn execute(&self, request: &OpRequest) -> Result<OpResponse, NfcOpError> {
        match request {
            OpRequest::Read => match self.nfc.ndef_read(self.uid) {
                Ok(bytes) => Ok(OpResponse::Bytes(bytes)),
                Err(NfcOpError::Protocol(_)) => {
                    // A one-shot corrupted response garbles the TLV or
                    // APDU framing; re-probe once before giving up — a
                    // persistent torn state fails the same way again,
                    // and a transient link error on the re-probe keeps
                    // the op retriable.
                    self.nfc.ndef_read(self.uid).map(OpResponse::Bytes)
                }
                Err(e) => Err(e),
            },
            OpRequest::Write(bytes) => match self.nfc.ndef_write(self.uid, bytes) {
                Ok(()) => Ok(OpResponse::Done),
                Err(e) => {
                    // Verify-after-write: when the final command took
                    // effect but its response was lost (or its ACK
                    // corrupted), the tag already holds exactly the
                    // target content. Reading it back and comparing
                    // keeps retries idempotent — the logical write
                    // happened once, so report success instead of
                    // re-writing (or failing) a completed operation.
                    match self.nfc.ndef_read(self.uid) {
                        Ok(current) if *current == **bytes => Ok(OpResponse::Done),
                        _ => Err(e),
                    }
                }
            },
            OpRequest::MakeReadOnly => match self.nfc.ndef_make_read_only(self.uid) {
                Ok(()) => Ok(OpResponse::Done),
                Err(e) => {
                    // The lock write is irreversible and not repeatable:
                    // once it lands, a retry is refused as ReadOnly. If
                    // the tag reports itself protected, the operation
                    // already succeeded.
                    match self.nfc.ndef_detect(self.uid) {
                        Ok(info) if !info.writable => Ok(OpResponse::Done),
                        _ => Err(e),
                    }
                }
            },
            OpRequest::Push(_) => Err(NfcOpError::Protocol("push is not a tag operation")),
        }
    }
}

/// A connectivity observer: called with the reference and the new
/// reachability every time the tag enters or leaves the field.
type ConnectivityObserver<C> = Box<dyn Fn(TagReference<C>, bool) + Send + Sync>;

struct RefInner<C: TagDataConverter> {
    uid: TagUid,
    tech: TagTech,
    ctx: MorenaContext,
    converter: Arc<C>,
    event_loop: EventLoop,
    /// The reference's pinned distribution policy (the loop holds its
    /// own copy; this one answers cache-TTL checks).
    policy: Policy,
    /// The cached value and when it was last confirmed on the tag —
    /// [`Policy::cache_ttl`] ages it from that instant.
    cache: Mutex<Option<(C::Value, SimInstant)>>,
    /// The raw tag bytes whose decoded value sits in `cache`. A read
    /// returning byte-identical content skips NDEF parsing and
    /// conversion entirely (the zero-copy cached-read fast path);
    /// cleared whenever `cache` is set by hand.
    last_raw: Mutex<Option<Arc<[u8]>>>,
    // Dropping the guard unregisters this reference from the context's
    // event router.
    route: Mutex<Option<RouteGuard>>,
    observers: Mutex<Vec<Arc<ConnectivityObserver<C>>>>,
}

impl<C: TagDataConverter> Drop for RefInner<C> {
    fn drop(&mut self) {
        // Non-blocking teardown (C-DTOR-BLOCK): the loop drains on its
        // next poll and the route guard unregisters with the struct;
        // `close()` is the synchronous path.
        self.event_loop.stop();
    }
}

/// A first-class remote reference to one RFID tag.
///
/// Cheap to clone; all clones share the queue, cache, and event loop.
/// Within one [`TagDiscoverer`](crate::discovery::TagDiscoverer) there is
/// exactly one reference per tag (the paper's uniqueness guarantee).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use morena_core::context::MorenaContext;
/// use morena_core::convert::StringConverter;
/// use morena_core::tagref::TagReference;
/// use morena_nfc_sim::clock::VirtualClock;
/// use morena_nfc_sim::link::LinkModel;
/// use morena_nfc_sim::tag::{TagTech, TagUid, Type2Tag};
/// use morena_nfc_sim::world::World;
///
/// let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 0);
/// let phone = world.add_phone("alice");
/// let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
/// let ctx = MorenaContext::headless(&world, phone);
///
/// let reference = TagReference::new(
///     &ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()),
/// );
/// // Queue a write while the tag is nowhere near the phone: it will be
/// // flushed automatically once the tag is tapped.
/// reference.write("hello".to_string(), |_| {}, |_, _| {});
/// assert_eq!(reference.queue_len(), 1);
/// ```
pub struct TagReference<C: TagDataConverter> {
    inner: Arc<RefInner<C>>,
}

impl<C: TagDataConverter> Clone for TagReference<C> {
    fn clone(&self) -> TagReference<C> {
        TagReference { inner: Arc::clone(&self.inner) }
    }
}

impl<C: TagDataConverter> MemFootprint for TagReference<C> {
    fn mem_bytes(&self) -> u64 {
        // Cached values and observer closures are attributed shallowly
        // (slot sizes only) — best-effort, per the trait contract.
        let cache = if self.inner.cache.lock().is_some() {
            std::mem::size_of::<(C::Value, SimInstant)>() as u64
        } else {
            0
        };
        let observers = self.inner.observers.lock().capacity() as u64
            * std::mem::size_of::<Arc<ConnectivityObserver<C>>>() as u64;
        std::mem::size_of::<RefInner<C>>() as u64
            + cache
            + observers
            + self.inner.event_loop.mem_bytes()
    }
}

impl<C: TagDataConverter> std::fmt::Debug for TagReference<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TagReference")
            .field("uid", &self.inner.uid.to_string())
            .field("tech", &self.inner.tech)
            .field("queued", &self.queue_len())
            .field("connected", &self.is_connected())
            .finish()
    }
}

impl<C: TagDataConverter> TagReference<C> {
    /// Creates a reference inheriting the context's default [`Policy`]
    /// (see [`MorenaContext::set_default_policy`]).
    pub fn new(
        ctx: &MorenaContext,
        uid: TagUid,
        tech: TagTech,
        converter: Arc<C>,
    ) -> TagReference<C> {
        TagReference::with_policy(ctx, uid, tech, converter, ctx.default_policy())
    }

    /// Creates a reference pinned to an explicit distribution
    /// [`Policy`] (retry curve, deadline budgets, cache TTL, write
    /// coalescing), overriding the context's default.
    pub fn with_policy(
        ctx: &MorenaContext,
        uid: TagUid,
        tech: TagTech,
        converter: Arc<C>,
        policy: Policy,
    ) -> TagReference<C> {
        let event_loop = EventLoop::spawn(
            &format!("tag-{uid}"),
            ctx.execution(),
            Arc::clone(ctx.clock()),
            ctx.handler(),
            policy.clone(),
            TagExecutor { nfc: ctx.nfc().clone(), uid },
            // Target keyed by uid rendering so op events join the
            // simulator's physical tag events in `morena_obs::correlate`.
            ObsScope::new(ctx, format!("tag-{uid}"), "tag", uid.to_string()),
        );
        let reference = TagReference {
            inner: Arc::new(RefInner {
                uid,
                tech,
                ctx: ctx.clone(),
                converter,
                event_loop: event_loop.clone(),
                policy,
                cache: Mutex::new(None),
                last_raw: Mutex::new(None),
                route: Mutex::new(None),
                observers: Mutex::new(Vec::new()),
            }),
        };
        // Route connectivity events for this tag through the context's
        // shared dispatcher: poke the event loop, fan out to observers.
        let weak = Arc::downgrade(&reference.inner);
        let guard = ctx.router().register(move |event| {
            let connected = match event {
                NfcEvent::TagEntered { uid: u, .. } if *u == uid => true,
                NfcEvent::TagLeft { uid: u } if *u == uid => false,
                _ => return,
            };
            event_loop.wake();
            let Some(inner) = weak.upgrade() else { return };
            let observers: Vec<_> = inner.observers.lock().clone();
            for observer in observers {
                let reference = TagReference { inner: Arc::clone(&inner) };
                inner.ctx.handler().post(move || observer(reference, connected));
            }
        });
        *reference.inner.route.lock() = Some(guard);
        reference
    }

    /// The referenced tag's UID.
    pub fn uid(&self) -> TagUid {
        self.inner.uid
    }

    /// The referenced tag's platform.
    pub fn tech(&self) -> TagTech {
        self.inner.tech
    }

    /// The reference's data converter.
    pub fn converter(&self) -> &Arc<C> {
        &self.inner.converter
    }

    /// The context this reference delivers listeners through.
    pub fn context(&self) -> &MorenaContext {
        &self.inner.ctx
    }

    /// Whether the tag is in communication range *right now* (tracking of
    /// connectivity; may change at any instant).
    pub fn is_connected(&self) -> bool {
        self.inner.ctx.nfc().tag_in_range(self.inner.uid)
    }

    /// Number of operations queued (including the one being attempted).
    pub fn queue_len(&self) -> usize {
        self.inner.event_loop.queue_len()
    }

    /// Lifetime operation statistics of this reference's event loop.
    pub fn stats(&self) -> Arc<OpStats> {
        self.inner.event_loop.stats()
    }

    /// The last value successfully seen on the tag (read or written), if
    /// any. Blank reads, transient failures, and unconvertible data all
    /// leave it untouched — only a successful read or write of an actual
    /// value replaces it.
    ///
    /// Synchronous and instant — but possibly stale: *"if a tag is not
    /// seen for some time, its contents might have changed and an
    /// asynchronous read is a better option"* (§3.2). With
    /// [`Policy::cache_ttl`] set, a value older than the TTL is treated
    /// as absent (forcing callers onto the asynchronous read path); the
    /// default policy keeps the paper's never-expires semantics.
    pub fn cached(&self) -> Option<C::Value> {
        let guard = self.inner.cache.lock();
        let (value, at) = guard.as_ref()?;
        if let Some(ttl) = self.inner.policy.cache_ttl {
            if self.inner.ctx.clock().now().saturating_since(*at) > ttl {
                return None;
            }
        }
        Some(value.clone())
    }

    /// Replaces the cached value locally (no tag I/O). Used by discovery
    /// pre-reads and by the things layer when the application mutates a
    /// thing before saving it.
    pub fn set_cached(&self, value: Option<C::Value>) {
        // A hand-set value no longer corresponds to any raw bytes seen
        // on the tag, so the identical-read fast path must re-decode.
        let now = self.inner.ctx.clock().now();
        *self.inner.last_raw.lock() = None;
        *self.inner.cache.lock() = value.map(|v| (v, now));
    }

    /// Stores a value together with the raw tag bytes it was decoded
    /// from (or encoded to), arming the identical-read fast path.
    fn store_cache(&self, value: C::Value, raw: Arc<[u8]>) {
        let now = self.inner.ctx.clock().now();
        *self.inner.cache.lock() = Some((value, now));
        *self.inner.last_raw.lock() = Some(raw);
    }

    /// Folds a successful read's raw bytes into the reference: blank
    /// reads keep the last-seen value (§3.2 semantics hardened for torn
    /// writes), byte-identical content short-circuits without parsing,
    /// anything else is decoded and cached.
    fn absorb_read(&self, bytes: &[u8]) -> Result<(), crate::convert::ConvertError> {
        if bytes.is_empty() {
            // Formatted but blank tag: a successful read of an empty
            // value. The cache deliberately keeps the last value
            // successfully *seen* — a torn Type 4 write reads back
            // blank until repaired, and wiping here would let a
            // transient fault destroy the last-known-good value.
            return Ok(());
        }
        if self.inner.last_raw.lock().as_deref() == Some(bytes) {
            // Identical to the bytes behind the current cache entry:
            // the decoded value is already there. This is the
            // steady-state read path — no parse, no conversion, no
            // allocation. The read did re-confirm the content on the
            // tag, so refresh the staleness stamp when a TTL cares.
            if self.inner.policy.cache_ttl.is_some() {
                let now = self.inner.ctx.clock().now();
                if let Some((_, at)) = self.inner.cache.lock().as_mut() {
                    *at = now;
                }
            }
            return Ok(());
        }
        let message = NdefMessage::parse(bytes).map_err(crate::convert::ConvertError::from)?;
        let value = self.inner.converter.from_message(&message)?;
        self.store_cache(value, bytes.into());
        Ok(())
    }

    /// Queues an asynchronous read with the default timeout.
    ///
    /// On success the cache is refreshed and `on_success` runs on the
    /// main thread with this reference; all failures (timeout, permanent
    /// fault, unconvertible data) go to `on_failure`.
    pub fn read<F, G>(&self, on_success: F, on_failure: G) -> OpTicket
    where
        F: FnOnce(TagReference<C>) + Send + 'static,
        G: FnOnce(TagReference<C>, OpFailure) + Send + 'static,
    {
        self.read_impl(None, on_success, on_failure)
    }

    /// [`read`](TagReference::read) with an explicit timeout.
    pub fn read_with_timeout<F, G>(
        &self,
        timeout: Duration,
        on_success: F,
        on_failure: G,
    ) -> OpTicket
    where
        F: FnOnce(TagReference<C>) + Send + 'static,
        G: FnOnce(TagReference<C>, OpFailure) + Send + 'static,
    {
        self.read_impl(Some(timeout), on_success, on_failure)
    }

    /// [`read`](TagReference::read) without a failure listener (the
    /// paper's listener-omitting overload).
    pub fn read_ok<F>(&self, on_success: F) -> OpTicket
    where
        F: FnOnce(TagReference<C>) + Send + 'static,
    {
        self.read_impl(None, on_success, |_, _| {})
    }

    fn read_impl<F, G>(&self, timeout: Option<Duration>, on_success: F, on_failure: G) -> OpTicket
    where
        F: FnOnce(TagReference<C>) + Send + 'static,
        G: FnOnce(TagReference<C>, OpFailure) + Send + 'static,
    {
        let this = self.clone();
        let fail_slot = Arc::new(Mutex::new(Some(on_failure)));
        let fail_for_success_path = Arc::clone(&fail_slot);
        let this_err = self.clone();
        self.inner.event_loop.submit(
            OpRequest::Read,
            timeout,
            Box::new(move |response| {
                let OpResponse::Bytes(bytes) = response else {
                    return; // Read always yields bytes.
                };
                match this.absorb_read(&bytes) {
                    Ok(()) => on_success(this),
                    Err(e) => {
                        if let Some(fail) = fail_for_success_path.lock().take() {
                            fail(this, OpFailure::InvalidData(e));
                        }
                    }
                }
            }),
            Box::new(move |failure| {
                if let Some(fail) = fail_slot.lock().take() {
                    fail(this_err, failure);
                }
            }),
        )
    }

    /// Queues an asynchronous write of `value` with the default timeout.
    ///
    /// The value is converted immediately; on success the cache holds
    /// `value` and `on_success` runs on the main thread.
    pub fn write<F, G>(&self, value: C::Value, on_success: F, on_failure: G) -> OpTicket
    where
        F: FnOnce(TagReference<C>) + Send + 'static,
        G: FnOnce(TagReference<C>, OpFailure) + Send + 'static,
    {
        self.write_impl(value, None, on_success, on_failure)
    }

    /// [`write`](TagReference::write) with an explicit timeout.
    pub fn write_with_timeout<F, G>(
        &self,
        value: C::Value,
        timeout: Duration,
        on_success: F,
        on_failure: G,
    ) -> OpTicket
    where
        F: FnOnce(TagReference<C>) + Send + 'static,
        G: FnOnce(TagReference<C>, OpFailure) + Send + 'static,
    {
        self.write_impl(value, Some(timeout), on_success, on_failure)
    }

    /// [`write`](TagReference::write) without a failure listener.
    pub fn write_ok<F>(&self, value: C::Value, on_success: F) -> OpTicket
    where
        F: FnOnce(TagReference<C>) + Send + 'static,
    {
        self.write_impl(value, None, on_success, |_, _| {})
    }

    fn write_impl<F, G>(
        &self,
        value: C::Value,
        timeout: Option<Duration>,
        on_success: F,
        on_failure: G,
    ) -> OpTicket
    where
        F: FnOnce(TagReference<C>) + Send + 'static,
        G: FnOnce(TagReference<C>, OpFailure) + Send + 'static,
    {
        let bytes: Arc<[u8]> = match self.inner.converter.to_message(&value) {
            Ok(message) => message.to_bytes().into(),
            Err(e) => {
                // Conversion failures surface asynchronously like any
                // other failure, keeping call sites uniform.
                let this = self.clone();
                self.inner.ctx.handler().post(move || {
                    on_failure(this, OpFailure::InvalidData(e));
                });
                return self.inner.event_loop.dead_ticket();
            }
        };
        let this = self.clone();
        let this_err = self.clone();
        let raw = Arc::clone(&bytes);
        self.inner.event_loop.submit(
            OpRequest::Write(bytes),
            timeout,
            Box::new(move |_| {
                this.store_cache(value, raw);
                on_success(this);
            }),
            Box::new(move |failure| on_failure(this_err, failure)),
        )
    }

    /// Queues an asynchronous, **irreversible** write-protection of the
    /// tag (the far-reference shape of `Ndef.makeReadOnly()`), with the
    /// default timeout. Like every queued operation it survives
    /// disconnection and retries transient faults.
    pub fn make_read_only<F, G>(&self, on_success: F, on_failure: G) -> OpTicket
    where
        F: FnOnce(TagReference<C>) + Send + 'static,
        G: FnOnce(TagReference<C>, OpFailure) + Send + 'static,
    {
        let this = self.clone();
        let this_err = self.clone();
        self.inner.event_loop.submit(
            OpRequest::MakeReadOnly,
            None,
            Box::new(move |_| on_success(this)),
            Box::new(move |failure| on_failure(this_err, failure)),
        )
    }

    /// Queues an asynchronous read and returns a future resolving to
    /// the refreshed cache (blank tags keep the last value seen).
    ///
    /// The future resolves on the loop's polling thread — no main-thread
    /// hop, no listener boxes. Dropping it before completion withdraws
    /// the operation (it fails as [`OpFailure::Cancelled`] internally;
    /// nobody observes the result). If the reference is closed — before
    /// or while the operation is queued — the future resolves with
    /// [`OpFailure::Cancelled`] rather than pending forever.
    pub fn read_async(&self) -> ReadFuture<C> {
        self.read_async_with_timeout_opt(None)
    }

    /// [`read_async`](TagReference::read_async) with an explicit timeout.
    pub fn read_async_with_timeout(&self, timeout: Duration) -> ReadFuture<C> {
        self.read_async_with_timeout_opt(Some(timeout))
    }

    fn read_async_with_timeout_opt(&self, timeout: Option<Duration>) -> ReadFuture<C> {
        ReadFuture {
            inner: self.inner.event_loop.submit_future(OpRequest::Read, timeout),
            reference: self.clone(),
        }
    }

    /// Queues an asynchronous write of `value` and returns a future
    /// resolving once it lands on the tag (the cache then holds
    /// `value`). Same drop/cancel and shutdown semantics as
    /// [`read_async`](TagReference::read_async); conversion failures
    /// resolve the future with [`OpFailure::InvalidData`].
    pub fn write_async(&self, value: C::Value) -> WriteFuture<C> {
        self.write_async_with_timeout_opt(value, None)
    }

    /// [`write_async`](TagReference::write_async) with an explicit
    /// timeout.
    pub fn write_async_with_timeout(&self, value: C::Value, timeout: Duration) -> WriteFuture<C> {
        self.write_async_with_timeout_opt(value, Some(timeout))
    }

    fn write_async_with_timeout_opt(
        &self,
        value: C::Value,
        timeout: Option<Duration>,
    ) -> WriteFuture<C> {
        let bytes: Arc<[u8]> = match self.inner.converter.to_message(&value) {
            Ok(message) => message.to_bytes().into(),
            Err(e) => {
                return WriteFuture {
                    state: WriteState::Immediate(Some(OpFailure::InvalidData(e))),
                }
            }
        };
        let raw = Arc::clone(&bytes);
        WriteFuture {
            state: WriteState::Queued {
                inner: self.inner.event_loop.submit_future(OpRequest::Write(bytes), timeout),
                reference: self.clone(),
                value: Some(value),
                raw,
            },
        }
    }

    /// Queues an asynchronous, irreversible write-protection of the tag
    /// and returns a future resolving when it lands. Same drop/cancel
    /// and shutdown semantics as [`read_async`](TagReference::read_async).
    pub fn make_read_only_async(&self) -> UnitFuture {
        UnitFuture::queued(self.inner.event_loop.submit_future(OpRequest::MakeReadOnly, None))
    }

    /// Registers a connectivity observer (§1.2: far references let the
    /// programmer *"register observers on it to be notified of
    /// connectivity changes"*). The observer runs on the main thread
    /// with this reference and the new reachability every time the tag
    /// enters (`true`) or leaves (`false`) the field.
    pub fn on_connectivity(
        &self,
        observer: impl Fn(TagReference<C>, bool) + Send + Sync + 'static,
    ) {
        self.inner.observers.lock().push(Arc::new(Box::new(observer)));
    }

    /// Blocking convenience: queues a read and waits for its outcome.
    /// Returns the cache as refreshed by the read (for a blank tag the
    /// cache — and thus the return value — keeps the last value seen).
    ///
    /// This is [`block_on`] over
    /// [`read_async_with_timeout`](TagReference::read_async_with_timeout):
    /// the future resolves on the loop's polling thread, so the adapter
    /// is safe from any thread — including the main thread — and
    /// terminates with [`OpFailure::Cancelled`] if the context stops
    /// mid-operation. With a
    /// [`VirtualClock`](morena_nfc_sim::clock::VirtualClock), some other
    /// thread must advance time for the timeout to ever fire.
    ///
    /// # Errors
    ///
    /// The [`OpFailure`] the asynchronous read would have delivered.
    pub fn read_sync(&self, timeout: Duration) -> Result<Option<C::Value>, OpFailure> {
        block_on(self.read_async_with_timeout(timeout))
    }

    /// Blocking convenience: queues a write and waits for its outcome.
    /// Same caveats as [`read_sync`](TagReference::read_sync).
    ///
    /// # Errors
    ///
    /// The [`OpFailure`] the asynchronous write would have delivered.
    pub fn write_sync(&self, value: C::Value, timeout: Duration) -> Result<(), OpFailure> {
        block_on(self.write_async_with_timeout(value, timeout))
    }

    /// Stops the private event loop: queued operations fail with
    /// [`OpFailure::Cancelled`] and no further operations are accepted.
    ///
    /// Reclaiming references is the application's responsibility (§3.2);
    /// this is the lever.
    pub fn close(&self) {
        self.inner.route.lock().take();
        self.inner.event_loop.stop();
    }

    /// Whether [`close`](TagReference::close) has been called (or the
    /// private event loop otherwise stopped). A closed reference never
    /// completes another operation; discovery uses this to evict dead
    /// references from its identity map.
    pub fn is_closed(&self) -> bool {
        self.inner.event_loop.is_stopped()
    }
}

/// Future returned by [`TagReference::read_async`]: resolves to the
/// refreshed cache once the read lands (blank tags keep the last value
/// seen). Dropping it before completion withdraws the operation.
pub struct ReadFuture<C: TagDataConverter> {
    inner: OpFuture,
    reference: TagReference<C>,
}

// The pinned fields are only the plain-`Unpin` OpFuture and a handle;
// C::Value never lives inside the future, so no bound on it is needed.
impl<C: TagDataConverter> Unpin for ReadFuture<C> {}

impl<C: TagDataConverter> ReadFuture<C> {
    /// A cancellation handle for the queued read; works even after the
    /// future itself has been consumed by an executor.
    pub fn ticket(&self) -> OpTicket {
        self.inner.ticket()
    }
}

impl<C: TagDataConverter> Future for ReadFuture<C> {
    type Output = Result<Option<C::Value>, OpFailure>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match Pin::new(&mut this.inner).poll(cx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Err(failure)) => Poll::Ready(Err(failure)),
            Poll::Ready(Ok(response)) => {
                let bytes = match response {
                    OpResponse::Bytes(bytes) => bytes,
                    _ => Vec::new(),
                };
                match this.reference.absorb_read(&bytes) {
                    Ok(()) => Poll::Ready(Ok(this.reference.cached())),
                    Err(e) => Poll::Ready(Err(OpFailure::InvalidData(e))),
                }
            }
        }
    }
}

impl<C: TagDataConverter> std::fmt::Debug for ReadFuture<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadFuture").field("reference", &self.reference).finish()
    }
}

enum WriteState<C: TagDataConverter> {
    Queued {
        inner: OpFuture,
        reference: TagReference<C>,
        // Held until success so the cache can absorb exactly what was
        // written without re-encoding.
        value: Option<C::Value>,
        raw: Arc<[u8]>,
    },
    // Conversion failed before anything was queued; resolves immediately.
    Immediate(Option<OpFailure>),
}

/// Future returned by [`TagReference::write_async`]: resolves once the
/// value lands on the tag (the cache then holds the written value).
/// Dropping it before completion withdraws the operation.
pub struct WriteFuture<C: TagDataConverter> {
    state: WriteState<C>,
}

impl<C: TagDataConverter> Unpin for WriteFuture<C> {}

impl<C: TagDataConverter> WriteFuture<C> {
    /// A cancellation handle for the queued write. For a write that
    /// failed conversion (and so was never queued) the ticket is inert.
    pub fn ticket(&self) -> OpTicket {
        match &self.state {
            WriteState::Queued { inner, .. } => inner.ticket(),
            WriteState::Immediate(_) => OpTicket::dead(),
        }
    }
}

impl<C: TagDataConverter> Future for WriteFuture<C> {
    type Output = Result<(), OpFailure>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match &mut self.get_mut().state {
            WriteState::Immediate(failure) => {
                Poll::Ready(Err(failure.take().expect("WriteFuture polled after completion")))
            }
            WriteState::Queued { inner, reference, value, raw } => match Pin::new(inner).poll(cx) {
                Poll::Pending => Poll::Pending,
                Poll::Ready(Err(failure)) => Poll::Ready(Err(failure)),
                Poll::Ready(Ok(_)) => {
                    let value = value.take().expect("WriteFuture polled after completion");
                    reference.store_cache(value, Arc::clone(raw));
                    Poll::Ready(Ok(()))
                }
            },
        }
    }
}

impl<C: TagDataConverter> std::fmt::Debug for WriteFuture<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.state {
            WriteState::Queued { reference, .. } => {
                f.debug_struct("WriteFuture").field("reference", &reference).finish()
            }
            WriteState::Immediate(failure) => {
                f.debug_struct("WriteFuture").field("immediate", failure).finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::StringConverter;
    use crossbeam::channel::unbounded;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::Type2Tag;
    use morena_nfc_sim::world::World;

    fn setup() -> (World, MorenaContext, TagUid) {
        let world = World::with_link(VirtualClock::shared(), LinkModel::instant(), 5);
        let phone = world.add_phone("alice");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        let ctx = MorenaContext::headless(&world, phone);
        (world, ctx, uid)
    }

    fn string_ref(ctx: &MorenaContext, uid: TagUid) -> TagReference<StringConverter> {
        TagReference::new(ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()))
    }

    #[test]
    fn write_then_read_round_trips_and_updates_cache() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        world.tap_tag(uid, ctx.phone());

        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        reference.write(
            "stored".to_string(),
            move |r| tx.send(r.cached()).unwrap(),
            |_, f| panic!("write failed: {f}"),
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), Some("stored".to_string()));

        // Clear the cache, read it back over the air.
        reference.set_cached(None);
        reference.read(move |r| tx2.send(r.cached()).unwrap(), |_, f| panic!("read failed: {f}"));
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), Some("stored".to_string()));
        assert_eq!(reference.uid(), uid);
        assert_eq!(reference.tech(), TagTech::Type2);
    }

    #[test]
    fn reading_a_blank_tag_yields_empty_cache() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        world.tap_tag(uid, ctx.phone());
        let (tx, rx) = unbounded();
        reference.read(move |r| tx.send(r.cached()).unwrap(), |_, f| panic!("{f}"));
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), None);
    }

    #[test]
    fn blank_read_preserves_the_last_seen_cache() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        world.tap_tag(uid, ctx.phone());
        reference.write_sync("v1".into(), Duration::from_secs(10)).unwrap();

        // Blank the tag behind the reference's back (an empty NDEF
        // message, as a torn Type 4 write would leave behind).
        ctx.nfc().ndef_write(uid, &[]).unwrap();

        // The read succeeds but sees no value: the cache must keep the
        // last value successfully seen, not degrade to None.
        assert_eq!(reference.read_sync(Duration::from_secs(10)).unwrap().as_deref(), Some("v1"));
        assert_eq!(reference.cached().as_deref(), Some("v1"));
    }

    #[test]
    fn invalid_data_preserves_the_last_seen_cache() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        world.tap_tag(uid, ctx.phone());
        reference.write_sync("v1".into(), Duration::from_secs(10)).unwrap();

        // Overwrite with a payload the converter cannot decode.
        let other = morena_ndef::NdefMessage::single(
            morena_ndef::NdefRecord::mime("application/other", b"x".to_vec()).unwrap(),
        );
        ctx.nfc().ndef_write(uid, &other.to_bytes()).unwrap();

        let (tx, rx) = unbounded();
        reference.read(|_| panic!("must not convert"), move |_, f| tx.send(f).unwrap());
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            OpFailure::InvalidData(_)
        ));
        // The failure is surfaced, but the last-known-good value stays.
        assert_eq!(reference.cached().as_deref(), Some("v1"));
    }

    #[test]
    fn cache_ttl_ages_the_synchronous_value_out() {
        let clock = Arc::new(VirtualClock::with_auto_advance(false));
        let world = World::with_link(clock.clone(), LinkModel::instant(), 5);
        let phone = world.add_phone("alice");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        let ctx = MorenaContext::headless(&world, phone);
        let reference = TagReference::with_policy(
            &ctx,
            uid,
            TagTech::Type2,
            Arc::new(StringConverter::plain_text()),
            Policy::new().with_cache_ttl(Some(Duration::from_secs(1))),
        );
        world.tap_tag(uid, ctx.phone());
        reference.write_sync("fresh".into(), Duration::from_secs(10)).unwrap();
        assert_eq!(reference.cached().as_deref(), Some("fresh"));

        // Past the TTL the synchronous accessor reports nothing…
        clock.advance(Duration::from_secs(2));
        assert_eq!(reference.cached(), None, "stale value must not be served");

        // …and an over-the-air read re-confirms the content, restarting
        // the TTL window even though the bytes were identical.
        assert_eq!(reference.read_sync(Duration::from_secs(10)).unwrap().as_deref(), Some("fresh"));
        assert_eq!(reference.cached().as_deref(), Some("fresh"));
    }

    #[test]
    fn default_policy_cache_never_expires() {
        let clock = Arc::new(VirtualClock::with_auto_advance(false));
        let world = World::with_link(clock.clone(), LinkModel::instant(), 5);
        let phone = world.add_phone("alice");
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        let ctx = MorenaContext::headless(&world, phone);
        let reference = string_ref(&ctx, uid);
        world.tap_tag(uid, ctx.phone());
        reference.write_sync("keep".into(), Duration::from_secs(10)).unwrap();
        clock.advance(Duration::from_secs(3600));
        assert_eq!(reference.cached().as_deref(), Some("keep"));
    }

    #[test]
    fn close_marks_the_reference_closed() {
        let (_world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        assert!(!reference.is_closed());
        reference.close();
        assert!(reference.is_closed());
    }

    #[test]
    fn ops_queued_while_disconnected_flush_on_tap() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        assert!(!reference.is_connected());

        let (tx, rx) = unbounded();
        for i in 0..4 {
            let tx = tx.clone();
            reference.write(format!("msg-{i}"), move |_| tx.send(i).unwrap(), |_, f| panic!("{f}"));
        }
        assert_eq!(reference.queue_len(), 4);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(reference.queue_len(), 4, "nothing may flush while out of range");

        world.tap_tag(uid, ctx.phone());
        // The whole batch flushes in FIFO order on one tap.
        let order: Vec<i32> =
            (0..4).map(|_| rx.recv_timeout(Duration::from_secs(10)).unwrap()).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(reference.cached(), Some("msg-3".to_string()));
    }

    #[test]
    fn in_order_delivery_is_guaranteed_across_interruptions() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        let (tx, rx) = unbounded();
        // First write queued while connected…
        world.tap_tag(uid, ctx.phone());
        for i in 0..2 {
            let tx = tx.clone();
            reference.write(
                format!("a-{i}"),
                move |_| tx.send(format!("a-{i}")).unwrap(),
                |_, f| panic!("{f}"),
            );
        }
        // …then the tag disappears and more writes pile up.
        world.remove_tag_from_field(uid);
        for i in 0..2 {
            let tx = tx.clone();
            reference.write(
                format!("b-{i}"),
                move |_| tx.send(format!("b-{i}")).unwrap(),
                |_, f| panic!("{f}"),
            );
        }
        world.tap_tag(uid, ctx.phone());
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(rx.recv_timeout(Duration::from_secs(10)).unwrap());
        }
        assert_eq!(seen, vec!["a-0", "a-1", "b-0", "b-1"]);
    }

    #[test]
    fn permanent_failures_reach_the_failure_listener() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        world.with_tag(uid, |t| {
            t.as_any_mut().downcast_mut::<Type2Tag>().expect("type 2").set_read_only(true);
        });
        world.tap_tag(uid, ctx.phone());

        let (tx, rx) = unbounded();
        reference.write(
            "x".to_string(),
            |_| panic!("must not succeed"),
            move |_, f| tx.send(f).unwrap(),
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            OpFailure::Failed(NfcOpError::ReadOnly)
        );
    }

    #[test]
    fn unconvertible_tag_data_is_invalid_data() {
        let (world, ctx, uid) = setup();
        world.tap_tag(uid, ctx.phone());
        // Store a different MIME type than the reference expects.
        let nfc = ctx.nfc();
        let other = morena_ndef::NdefMessage::single(
            morena_ndef::NdefRecord::mime("application/other", b"x".to_vec()).unwrap(),
        );
        nfc.ndef_write(uid, &other.to_bytes()).unwrap();

        let reference = string_ref(&ctx, uid);
        let (tx, rx) = unbounded();
        reference.read(|_| panic!("must not convert"), move |_, f| tx.send(f).unwrap());
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            OpFailure::InvalidData(_)
        ));
    }

    #[test]
    fn close_cancels_pending_ops() {
        let (_world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        let (tx, rx) = unbounded();
        reference.write("never".into(), |_| panic!("no"), move |_, f| tx.send(f).unwrap());
        reference.close();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), OpFailure::Cancelled);
    }

    #[test]
    fn make_read_only_queues_like_any_far_reference_operation() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        // Queue: write, then protect — both against an absent tag.
        reference.write(
            "final words".into(),
            move |_| tx.send("write").unwrap(),
            |_, f| panic!("{f}"),
        );
        reference.make_read_only(move |_| tx2.send("locked").unwrap(), |_, f| panic!("{f}"));
        world.tap_tag(uid, ctx.phone());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), "write");
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), "locked");
        // A later write fails permanently.
        let (err_tx, err_rx) = unbounded();
        reference.write(
            "too late".into(),
            |_| panic!("locked"),
            move |_, f| err_tx.send(f).unwrap(),
        );
        assert!(matches!(
            err_rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            OpFailure::Failed(NfcOpError::ReadOnly)
        ));
        // The content written before the lock is still there.
        assert_eq!(
            reference.read_sync(Duration::from_secs(10)).unwrap().as_deref(),
            Some("final words")
        );
        reference.close();
    }

    #[test]
    fn queued_ops_can_be_cancelled_before_the_tag_appears() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        // Two writes queued against the absent tag; cancel the first.
        let ticket = reference.write(
            "withdrawn".to_string(),
            |_| panic!("cancelled op must not succeed"),
            move |_, f| tx.send(("first", f)).unwrap(),
        );
        reference.write(
            "kept".to_string(),
            move |r| {
                tx2.send(("second", OpFailure::Cancelled))
                    .map(|_| {
                        let _ = r;
                    })
                    .unwrap()
            },
            |_, f| panic!("second op failed: {f}"),
        );
        assert!(ticket.cancel());
        assert!(!ticket.cancel(), "cancel is idempotent");
        assert!(ticket.is_cancelled());
        let (which, failure) = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(which, "first");
        assert_eq!(failure, OpFailure::Cancelled);
        // The remaining op proceeds normally once the tag appears.
        world.tap_tag(uid, ctx.phone());
        let (which, _) = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(which, "second");
        assert_eq!(reference.cached().as_deref(), Some("kept"));
        assert_eq!(reference.stats().snapshot().cancelled, 1);
    }

    #[test]
    fn cancelling_a_completed_op_is_a_noop() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        world.tap_tag(uid, ctx.phone());
        let (tx, rx) = unbounded();
        let ticket = reference.write(
            "done".to_string(),
            move |_| tx.send(()).unwrap(),
            |_, f| panic!("{f}"),
        );
        rx.recv_timeout(Duration::from_secs(10)).unwrap();
        // The op already completed; cancelling must not produce a failure.
        ticket.cancel();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(reference.stats().snapshot().cancelled, 0);
        assert_eq!(reference.cached().as_deref(), Some("done"));
    }

    #[test]
    fn connectivity_observers_fire_on_enter_and_leave() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        let (tx, rx) = unbounded();
        reference.on_connectivity(move |r, connected| {
            tx.send((r.uid(), connected)).unwrap();
        });
        world.tap_tag(uid, ctx.phone());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), (uid, true));
        world.remove_tag_from_field(uid);
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), (uid, false));
        // Multiple observers all fire.
        let (tx2, rx2) = unbounded();
        reference.on_connectivity(move |_, connected| tx2.send(connected).unwrap());
        world.tap_tag(uid, ctx.phone());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), (uid, true));
        assert!(rx2.recv_timeout(Duration::from_secs(10)).unwrap());
    }

    #[test]
    fn sync_adapters_round_trip() {
        let (world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        world.tap_tag(uid, ctx.phone());
        reference.write_sync("synchronous".into(), Duration::from_secs(10)).unwrap();
        assert_eq!(
            reference.read_sync(Duration::from_secs(10)).unwrap().as_deref(),
            Some("synchronous")
        );
    }

    #[test]
    fn sync_adapters_surface_failures() {
        let (_world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        reference.close();
        assert_eq!(
            reference.write_sync("x".into(), Duration::from_secs(1)).unwrap_err(),
            OpFailure::Cancelled
        );
    }

    #[test]
    fn clones_share_queue_and_cache() {
        let (_world, ctx, uid) = setup();
        let reference = string_ref(&ctx, uid);
        let clone = reference.clone();
        clone.set_cached(Some("shared".into()));
        assert_eq!(reference.cached(), Some("shared".into()));
        reference.write("queued".into(), |_| {}, |_, _| {});
        assert_eq!(clone.queue_len(), 1);
        assert!(format!("{reference:?}").contains("TagReference"));
    }
}
