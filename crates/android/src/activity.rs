//! Activities: the application entry points of the platform, with the
//! lifecycle and NFC intent dispatch that the MORENA paper's "tight
//! coupling with the activity-based architecture" drawback refers to.
//!
//! An [`Activity`] receives every NFC event through callbacks on the main
//! thread — exactly the programming model the raw Android NFC API imposes,
//! and the one the handcrafted baseline application is written against.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::RecvTimeoutError;
use morena_nfc_sim::controller::NfcHandle;
use morena_nfc_sim::tag::TagUid;
use morena_nfc_sim::world::{NfcEvent, PhoneId, World};

use crate::intent::Intent;
use crate::looper::{Handler, MainThread};
use crate::ui::ToastLog;

/// How many times the platform retries the discovery pre-read while the
/// tag remains in the field (real stacks retry a couple of times before
/// giving up and dispatching `TAG_DISCOVERED`).
const PREREAD_ATTEMPTS: usize = 3;

/// Which NFC intents reach an activity — the analog of the intent
/// filters an Android app declares in its manifest (or arms via
/// foreground dispatch).
#[derive(Debug, Clone)]
pub struct IntentFilter {
    /// MIME types of `NDEF_DISCOVERED` intents to deliver; empty means
    /// *all* (including blank tags and non-MIME first records).
    pub mime_types: Vec<String>,
    /// Whether to deliver `TAG_DISCOVERED` fallbacks (unreadable tags).
    pub tag_discovered: bool,
    /// Whether to deliver messages received over Beam.
    pub beam: bool,
}

impl IntentFilter {
    /// Accepts everything (the default of [`ActivityHost::launch`]).
    pub fn accept_all() -> IntentFilter {
        IntentFilter { mime_types: Vec::new(), tag_discovered: true, beam: true }
    }

    /// Accepts only NDEF intents of one MIME type (plus beams of it).
    pub fn mime(mime: &str) -> IntentFilter {
        IntentFilter { mime_types: vec![mime.to_owned()], tag_discovered: false, beam: true }
    }

    /// Whether `intent` passes this filter.
    pub fn matches(&self, intent: &Intent) -> bool {
        match intent.action() {
            crate::intent::IntentAction::TagDiscovered => self.tag_discovered,
            crate::intent::IntentAction::NdefDiscovered => {
                let is_beam = matches!(intent.source(), crate::intent::IntentSource::Beam { .. });
                if is_beam && !self.beam {
                    return false;
                }
                if self.mime_types.is_empty() {
                    return true;
                }
                intent.mime_type().map(|m| self.mime_types.iter().any(|f| f == m)).unwrap_or(false)
            }
        }
    }
}

/// An application component receiving lifecycle and NFC callbacks.
///
/// All callbacks run on the activity's main thread. Implementations use
/// interior mutability (the host shares the activity across threads).
pub trait Activity: Send + Sync + 'static {
    /// The activity is being created (before any NFC dispatch).
    fn on_create(&self, ctx: &ActivityContext) {
        let _ = ctx;
    }

    /// The activity came to the foreground and will receive NFC intents.
    fn on_resume(&self, ctx: &ActivityContext) {
        let _ = ctx;
    }

    /// An NFC intent arrived (tag discovered / NDEF discovered / beam).
    fn on_new_intent(&self, ctx: &ActivityContext, intent: Intent) {
        let _ = (ctx, intent);
    }

    /// A tag left the field.
    ///
    /// *Platform note:* stock Android surfaces tag loss only as I/O
    /// failures; this explicit callback models the controller-level field
    /// detection that NFC hardware performs, and is what MORENA's
    /// connectivity tracking builds on.
    fn on_tag_lost(&self, ctx: &ActivityContext, uid: TagUid) {
        let _ = (ctx, uid);
    }

    /// The activity is leaving the foreground.
    fn on_pause(&self, ctx: &ActivityContext) {
        let _ = ctx;
    }

    /// The activity is being destroyed.
    fn on_destroy(&self, ctx: &ActivityContext) {
        let _ = ctx;
    }
}

/// Everything an activity can reach while handling a callback: its NFC
/// controller, the main-thread handler, and the toast UI.
#[derive(Debug, Clone)]
pub struct ActivityContext {
    name: String,
    nfc: NfcHandle,
    handler: Handler,
    toasts: ToastLog,
}

impl ActivityContext {
    /// The activity's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phone this activity runs on.
    pub fn phone(&self) -> PhoneId {
        self.nfc.phone()
    }

    /// The phone's NFC controller handle.
    pub fn nfc(&self) -> &NfcHandle {
        &self.nfc
    }

    /// A handler posting to this activity's main thread.
    pub fn handler(&self) -> Handler {
        self.handler.clone()
    }

    /// Shows a toast notification.
    pub fn toast(&self, message: impl Into<String>) {
        self.toasts.show(message);
    }

    /// The toast log (for assertions).
    pub fn toasts(&self) -> ToastLog {
        self.toasts.clone()
    }
}

/// Hosts one activity: owns its main thread, pumps NFC dispatch to it,
/// and drives its lifecycle. Dropping the host destroys the activity.
pub struct ActivityHost {
    ctx: ActivityContext,
    main: MainThread,
    activity: Arc<dyn Activity>,
    stop: Arc<AtomicBool>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ActivityHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActivityHost").field("name", &self.ctx.name).finish()
    }
}

impl ActivityHost {
    /// Launches `activity` on `phone` with an accept-all intent filter:
    /// spawns its main thread, calls `on_create` and `on_resume`, and
    /// starts NFC intent dispatch.
    pub fn launch(
        world: &World,
        phone: PhoneId,
        name: &str,
        activity: Arc<dyn Activity>,
    ) -> ActivityHost {
        ActivityHost::launch_filtered(world, phone, name, activity, IntentFilter::accept_all())
    }

    /// [`launch`](ActivityHost::launch) with an explicit [`IntentFilter`]
    /// deciding which NFC intents the activity receives.
    pub fn launch_filtered(
        world: &World,
        phone: PhoneId,
        name: &str,
        activity: Arc<dyn Activity>,
        filter: IntentFilter,
    ) -> ActivityHost {
        let nfc = NfcHandle::new(world.clone(), phone);
        let main = MainThread::spawn();
        let ctx = ActivityContext {
            name: name.to_owned(),
            nfc: nfc.clone(),
            handler: main.handler(),
            toasts: ToastLog::new(),
        };

        {
            let activity = Arc::clone(&activity);
            let ctx = ctx.clone();
            main.run_sync(move || {
                activity.on_create(&ctx);
                activity.on_resume(&ctx);
            });
        }

        let stop = Arc::new(AtomicBool::new(false));
        let dispatcher = {
            let events = nfc.events();
            let stop = Arc::clone(&stop);
            let activity = Arc::clone(&activity);
            let ctx = ctx.clone();
            std::thread::Builder::new()
                .name(format!("nfc-dispatch-{name}"))
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match events.recv_timeout(Duration::from_millis(20)) {
                            Ok(event) => dispatch(&nfc, &activity, &ctx, &filter, event),
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                })
                .expect("spawn NFC dispatcher")
        };

        ActivityHost { ctx, main, activity, stop, dispatcher: Some(dispatcher) }
    }

    /// The activity's context.
    pub fn context(&self) -> &ActivityContext {
        &self.ctx
    }

    /// The toast log.
    pub fn toasts(&self) -> ToastLog {
        self.ctx.toasts()
    }

    /// Runs `f` on the activity's main thread and waits for it — a
    /// barrier that guarantees earlier posted callbacks have run.
    pub fn run_sync<R: Send + 'static>(&self, f: impl FnOnce() -> R + Send + 'static) -> R {
        self.main.run_sync(f)
    }

    /// The hosted activity.
    pub fn activity(&self) -> &Arc<dyn Activity> {
        &self.activity
    }
}

impl Drop for ActivityHost {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.dispatcher.take() {
            let _ = join.join();
        }
        let activity = Arc::clone(&self.activity);
        let ctx = self.ctx.clone();
        self.main.run_sync(move || {
            activity.on_pause(&ctx);
            activity.on_destroy(&ctx);
        });
    }
}

/// Translates one controller event into activity callbacks, performing
/// the platform's NDEF pre-read for discovered tags.
fn dispatch(
    nfc: &NfcHandle,
    activity: &Arc<dyn Activity>,
    ctx: &ActivityContext,
    filter: &IntentFilter,
    event: NfcEvent,
) {
    match event {
        NfcEvent::TagEntered { uid, tech } => {
            let mut intent = Intent::tag_only(uid, tech);
            for _ in 0..PREREAD_ATTEMPTS {
                match nfc.ndef_read(uid) {
                    Ok(bytes) => {
                        intent = Intent::ndef_from_tag(uid, tech, bytes);
                        break;
                    }
                    Err(e) if e.is_transient() && nfc.tag_in_range(uid) => continue,
                    Err(_) => break,
                }
            }
            if filter.matches(&intent) {
                post_intent(activity, ctx, intent);
            }
        }
        NfcEvent::TagLeft { uid } => {
            let activity = Arc::clone(activity);
            let ctx = ctx.clone();
            ctx.handler().post(move || activity.on_tag_lost(&ctx, uid));
        }
        NfcEvent::BeamReceived { from, bytes } => {
            let intent = Intent::ndef_from_beam(from, bytes);
            if filter.matches(&intent) {
                post_intent(activity, ctx, intent);
            }
        }
        // Peer proximity is not part of the Android activity contract;
        // middleware layers subscribe to the controller directly.
        NfcEvent::PeerEntered { .. } | NfcEvent::PeerLeft { .. } => {}
    }
}

fn post_intent(activity: &Arc<dyn Activity>, ctx: &ActivityContext, intent: Intent) {
    let activity = Arc::clone(activity);
    let ctx = ctx.clone();
    ctx.handler().post(move || activity.on_new_intent(&ctx, intent));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::IntentAction;
    use morena_nfc_sim::clock::VirtualClock;
    use morena_nfc_sim::link::LinkModel;
    use morena_nfc_sim::tag::{TagTech, Type2Tag};
    use parking_lot::Mutex;

    #[derive(Default)]
    struct Recorder {
        intents: Mutex<Vec<Intent>>,
        lost: Mutex<Vec<TagUid>>,
        lifecycle: Mutex<Vec<&'static str>>,
    }

    impl Activity for Recorder {
        fn on_create(&self, _ctx: &ActivityContext) {
            self.lifecycle.lock().push("create");
        }
        fn on_resume(&self, _ctx: &ActivityContext) {
            self.lifecycle.lock().push("resume");
        }
        fn on_new_intent(&self, ctx: &ActivityContext, intent: Intent) {
            ctx.toast("intent!");
            self.intents.lock().push(intent);
        }
        fn on_tag_lost(&self, _ctx: &ActivityContext, uid: TagUid) {
            self.lost.lock().push(uid);
        }
        fn on_pause(&self, _ctx: &ActivityContext) {
            self.lifecycle.lock().push("pause");
        }
        fn on_destroy(&self, _ctx: &ActivityContext) {
            self.lifecycle.lock().push("destroy");
        }
    }

    fn wait_until(cond: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline && !cond() {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(cond(), "condition not reached in time");
    }

    fn world() -> World {
        World::with_link(VirtualClock::shared(), LinkModel::instant(), 0)
    }

    #[test]
    fn tap_dispatches_ndef_discovered_with_preread() {
        let w = world();
        let phone = w.add_phone("alice");
        let uid = w.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
        // Pre-load content.
        let nfc = NfcHandle::new(w.clone(), phone);
        w.tap_tag(uid, phone);
        nfc.ndef_write(uid, b"\xd2\x03\x04a/bdata").unwrap(); // raw mime record bytes
        w.remove_tag_from_field(uid);

        let recorder = Arc::new(Recorder::default());
        let host = ActivityHost::launch(&w, phone, "test", recorder.clone());
        w.tap_tag(uid, phone);
        wait_until(|| !recorder.intents.lock().is_empty());
        host.run_sync(|| {});
        let intents = recorder.intents.lock();
        assert_eq!(intents[0].action(), IntentAction::NdefDiscovered);
        assert_eq!(intents[0].tag(), Some((uid, TagTech::Type2)));
        assert_eq!(intents[0].mime_type(), Some("a/b"));
        assert!(host.toasts().contains("intent!"));
    }

    #[test]
    fn unreadable_tag_dispatches_tag_discovered() {
        let w = world();
        let phone = w.add_phone("alice");
        let mut t2 = Type2Tag::ntag213(TagUid::from_seed(2));
        t2.unformat();
        let uid = w.add_tag(Box::new(t2));
        let recorder = Arc::new(Recorder::default());
        let _host = ActivityHost::launch(&w, phone, "test", recorder.clone());
        w.tap_tag(uid, phone);
        wait_until(|| !recorder.intents.lock().is_empty());
        assert_eq!(recorder.intents.lock()[0].action(), IntentAction::TagDiscovered);
    }

    #[test]
    fn tag_loss_reaches_the_activity() {
        let w = world();
        let phone = w.add_phone("alice");
        let uid = w.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(3))));
        let recorder = Arc::new(Recorder::default());
        let _host = ActivityHost::launch(&w, phone, "test", recorder.clone());
        w.tap_tag(uid, phone);
        wait_until(|| !recorder.intents.lock().is_empty());
        w.remove_tag_from_field(uid);
        wait_until(|| !recorder.lost.lock().is_empty());
        assert_eq!(recorder.lost.lock()[0], uid);
    }

    #[test]
    fn beam_is_dispatched_as_ndef_intent() {
        let w = world();
        let alice = w.add_phone("alice");
        let bob = w.add_phone("bob");
        let recorder = Arc::new(Recorder::default());
        let _host = ActivityHost::launch(&w, bob, "bob-app", recorder.clone());
        w.bring_phones_together(alice, bob);
        let nfc_alice = NfcHandle::new(w.clone(), alice);
        nfc_alice.beam(b"\xd2\x03\x02a/bhi").unwrap();
        wait_until(|| !recorder.intents.lock().is_empty());
        let intents = recorder.intents.lock();
        assert_eq!(intents[0].action(), IntentAction::NdefDiscovered);
        assert!(matches!(intents[0].source(), crate::intent::IntentSource::Beam { .. }));
    }

    #[test]
    fn intent_filter_matching_rules() {
        use crate::intent::IntentSource;
        let mime_msg = |m: &str| {
            morena_ndef::NdefMessage::single(
                morena_ndef::NdefRecord::mime(m, b"x".to_vec()).unwrap(),
            )
            .to_bytes()
        };
        let uid = TagUid::from_seed(9);
        let ours = Intent::ndef_from_tag(uid, TagTech::Type2, mime_msg("a/b"));
        let theirs = Intent::ndef_from_tag(uid, TagTech::Type2, mime_msg("c/d"));
        let fallback = Intent::tag_only(uid, TagTech::Type2);
        let beam =
            Intent::ndef_from_beam(morena_nfc_sim::world::PhoneId::from_u64(1), mime_msg("a/b"));

        let all = IntentFilter::accept_all();
        assert!(
            all.matches(&ours)
                && all.matches(&theirs)
                && all.matches(&fallback)
                && all.matches(&beam)
        );

        let ab = IntentFilter::mime("a/b");
        assert!(ab.matches(&ours));
        assert!(!ab.matches(&theirs));
        assert!(!ab.matches(&fallback)); // tag_discovered off
        assert!(ab.matches(&beam));

        let no_beam = IntentFilter { beam: false, ..IntentFilter::mime("a/b") };
        assert!(!no_beam.matches(&beam));
        assert!(no_beam.matches(&ours));
        assert!(matches!(beam.source(), IntentSource::Beam { .. }));
    }

    #[test]
    fn filtered_activity_ignores_foreign_mime() {
        let w = world();
        let phone = w.add_phone("alice");
        let uid = w.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(20))));
        let nfc = NfcHandle::new(w.clone(), phone);
        w.tap_tag(uid, phone);
        nfc.ndef_write(uid, b"\xd2\x03\x04c/ddata").unwrap(); // mime c/d
        w.remove_tag_from_field(uid);

        let recorder = Arc::new(Recorder::default());
        let _host = ActivityHost::launch_filtered(
            &w,
            phone,
            "filtered",
            recorder.clone(),
            IntentFilter::mime("a/b"),
        );
        w.tap_tag(uid, phone);
        std::thread::sleep(Duration::from_millis(150));
        assert!(recorder.intents.lock().is_empty(), "foreign mime must be filtered out");
    }

    #[test]
    fn lifecycle_runs_in_order() {
        let w = world();
        let phone = w.add_phone("alice");
        let recorder = Arc::new(Recorder::default());
        let host = ActivityHost::launch(&w, phone, "test", recorder.clone());
        drop(host);
        assert_eq!(*recorder.lifecycle.lock(), vec!["create", "resume", "pause", "destroy"]);
    }
}
