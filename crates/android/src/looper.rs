//! The main-thread message queue, in the style of Android's
//! `Looper`/`Handler`.
//!
//! Android's threading contract — which the MORENA paper leans on when it
//! promises that *"listeners … are always asynchronously scheduled for
//! execution in the activity's main thread"* — is that all UI callbacks
//! run sequentially on one designated thread that pumps a message queue.
//! [`Looper`] is that queue; [`Handler`] is the cloneable posting side.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle, ThreadId};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

type Task = Box<dyn FnOnce() + Send + 'static>;

enum Message {
    Run(Task),
    Quit,
}

/// The posting side of a [`Looper`]: clone it freely and hand it to any
/// thread that needs to schedule work on the main thread.
#[derive(Clone)]
pub struct Handler {
    tx: Sender<Message>,
    posted: Arc<AtomicU64>,
}

impl std::fmt::Debug for Handler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handler").field("posted", &self.posted.load(Ordering::Relaxed)).finish()
    }
}

impl Handler {
    /// Posts a task to run on the looper thread. Returns `false` when the
    /// looper has quit and the task will never run.
    pub fn post(&self, task: impl FnOnce() + Send + 'static) -> bool {
        self.posted.fetch_add(1, Ordering::Relaxed);
        self.tx.send(Message::Run(Box::new(task))).is_ok()
    }

    /// Posts a task, handing it back instead of dropping it when the
    /// looper has quit — the caller decides what a dead main thread
    /// means (MORENA's event loops run terminal listeners inline rather
    /// than lose them during teardown).
    pub fn post_or_take(
        &self,
        task: impl FnOnce() + Send + 'static,
    ) -> Result<(), Box<dyn FnOnce() + Send + 'static>> {
        self.posted.fetch_add(1, Ordering::Relaxed);
        match self.tx.send(Message::Run(Box::new(task))) {
            Ok(()) => Ok(()),
            Err(crossbeam::channel::SendError(Message::Run(task))) => Err(task),
            Err(crossbeam::channel::SendError(Message::Quit)) => unreachable!("sent Run"),
        }
    }

    /// Total tasks ever posted through this looper (all handlers).
    pub fn posted_count(&self) -> u64 {
        self.posted.load(Ordering::Relaxed)
    }

    /// Asks the looper to stop after the tasks already queued.
    pub fn quit(&self) {
        let _ = self.tx.send(Message::Quit);
    }
}

/// A message queue pumped by one thread.
pub struct Looper {
    rx: Receiver<Message>,
    handler: Handler,
}

impl std::fmt::Debug for Looper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Looper").field("pending", &self.rx.len()).finish()
    }
}

impl Default for Looper {
    fn default() -> Looper {
        Looper::new()
    }
}

impl Looper {
    /// Creates a looper (not yet pumping).
    pub fn new() -> Looper {
        let (tx, rx) = unbounded();
        Looper { rx, handler: Handler { tx, posted: Arc::new(AtomicU64::new(0)) } }
    }

    /// A handler that posts to this looper.
    pub fn handler(&self) -> Handler {
        self.handler.clone()
    }

    /// Pumps messages on the calling thread until [`Handler::quit`].
    pub fn run(&self) {
        while let Ok(message) = self.rx.recv() {
            match message {
                Message::Run(task) => task(),
                Message::Quit => break,
            }
        }
    }

    /// Runs queued tasks until the queue stays empty for `idle`, without
    /// requiring a quit — useful in tests that pump in lockstep.
    pub fn run_until_idle(&self, idle: Duration) {
        loop {
            match self.rx.recv_timeout(idle) {
                Ok(Message::Run(task)) => task(),
                Ok(Message::Quit) | Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
}

/// A looper pumped by a dedicated "main" thread — what a running Android
/// app gives you for free. Dropping the [`MainThread`] quits and joins it.
#[derive(Debug)]
pub struct MainThread {
    handler: Handler,
    thread_id: ThreadId,
    join: Option<JoinHandle<()>>,
}

impl MainThread {
    /// Spawns the main thread and starts pumping.
    pub fn spawn() -> MainThread {
        let looper = Looper::new();
        let handler = looper.handler();
        let (id_tx, id_rx) = unbounded();
        let join = thread::Builder::new()
            .name("main-thread".into())
            .spawn(move || {
                id_tx.send(thread::current().id()).expect("report thread id");
                looper.run();
            })
            .expect("spawn main thread");
        let thread_id = id_rx.recv().expect("main thread started");
        MainThread { handler, thread_id, join: Some(join) }
    }

    /// A handler posting to the main thread.
    pub fn handler(&self) -> Handler {
        self.handler.clone()
    }

    /// The main thread's id, for "am I on the main thread?" assertions.
    pub fn thread_id(&self) -> ThreadId {
        self.thread_id
    }

    /// Posts a closure and blocks until it has run — a synchronization
    /// barrier with the UI thread.
    ///
    /// # Panics
    ///
    /// Panics if the main thread has already quit.
    pub fn run_sync<R: Send + 'static>(&self, f: impl FnOnce() -> R + Send + 'static) -> R {
        let (tx, rx) = unbounded();
        let posted = self.handler.post(move || {
            let _ = tx.send(f());
        });
        assert!(posted, "main thread has quit");
        rx.recv().expect("main thread executed the task")
    }
}

impl Drop for MainThread {
    fn drop(&mut self) {
        self.handler.quit();
        if let Some(join) = self.join.take() {
            if thread::current().id() == self.thread_id {
                // The last owner was a closure running *on* the main
                // thread itself (listeners routinely hold context
                // clones): joining here would self-deadlock. The pump
                // sees the quit message and exits on its own.
                drop(join);
            } else {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn tasks_run_in_post_order_on_one_thread() {
        let main = MainThread::spawn();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..100 {
            let order = Arc::clone(&order);
            main.handler().post(move || order.lock().push(i));
        }
        main.run_sync(|| {});
        assert_eq!(*order.lock(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn callbacks_run_on_the_main_thread() {
        let main = MainThread::spawn();
        let main_id = main.thread_id();
        let ran_on = main.run_sync(thread::current);
        assert_eq!(ran_on.id(), main_id);
        assert_ne!(thread::current().id(), main_id);
    }

    #[test]
    fn quit_stops_accepting_work() {
        let main = MainThread::spawn();
        let handler = main.handler();
        handler.quit();
        // Give the pump a moment to exit.
        thread::sleep(Duration::from_millis(20));
        let accepted = handler.post(|| {});
        // Post may still succeed into a disconnected-but-alive channel edge;
        // the strong guarantee is that drop() joins cleanly.
        drop(main);
        let _ = accepted;
    }

    #[test]
    fn post_or_take_returns_the_task_once_the_channel_is_dead() {
        let handler = {
            let looper = Looper::new();
            looper.handler()
            // The looper (and its receiver) drop here.
        };
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        match handler.post_or_take(move || {
            ran2.fetch_add(1, Ordering::SeqCst);
        }) {
            Ok(()) => panic!("channel is dead; the task must come back"),
            Err(task) => task(),
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1, "recovered task still runs");
    }

    #[test]
    fn dropping_main_thread_from_its_own_callback_does_not_deadlock() {
        // The last owner of a MainThread is often a posted closure that
        // runs on the main thread itself; dropping there must neither
        // deadlock nor panic.
        let main = Arc::new(MainThread::spawn());
        let (tx, rx) = unbounded();
        let own = Arc::clone(&main);
        main.handler().post(move || {
            drop(own); // may or may not be the last owner yet
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Now make the posted closure the definitive last owner.
        let (tx, rx) = unbounded();
        let handler = main.handler();
        handler.post(move || {
            drop(main); // the last Arc dies on the main thread
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // The pump exits on its own; nothing left to assert beyond
        // "we got here without a panic propagating or a hang".
        thread::sleep(Duration::from_millis(30));
    }

    #[test]
    fn run_until_idle_drains_queue() {
        let looper = Looper::new();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            looper.handler().post(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        looper.run_until_idle(Duration::from_millis(10));
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn posted_count_counts() {
        let looper = Looper::new();
        let h = looper.handler();
        h.post(|| {});
        h.post(|| {});
        assert_eq!(h.posted_count(), 2);
    }
}
