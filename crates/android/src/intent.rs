//! Intents: the typed events through which the platform tells an
//! application about NFC activity, mirroring Android's
//! `ACTION_NDEF_DISCOVERED` / `ACTION_TAG_DISCOVERED` dispatch.
//!
//! As on Android, the platform *pre-reads* a discovered tag's NDEF
//! message: when the read succeeds the application receives
//! [`IntentAction::NdefDiscovered`] carrying the message bytes and the
//! MIME type of the first record (used for filtering); when the tag is
//! not NDEF-formatted or the pre-read keeps failing it receives
//! [`IntentAction::TagDiscovered`] with only the tag identity.

use morena_ndef::{NdefMessage, Tnf};
use morena_nfc_sim::tag::{TagTech, TagUid};
use morena_nfc_sim::world::PhoneId;

/// The dispatch category of an [`Intent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntentAction {
    /// A tag with a readable NDEF message entered the field (also used
    /// for messages received over Beam, exactly as Android does).
    NdefDiscovered,
    /// A tag entered the field but no NDEF message could be read.
    TagDiscovered,
}

/// Where the NDEF payload physically came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntentSource {
    /// Read from a tag in the field.
    Tag,
    /// Pushed by a peer phone over Beam.
    Beam {
        /// The sending phone.
        from: PhoneId,
    },
}

/// An NFC dispatch event delivered to the foreground activity.
#[derive(Debug, Clone, PartialEq)]
pub struct Intent {
    action: IntentAction,
    source: IntentSource,
    tag: Option<(TagUid, TagTech)>,
    ndef_bytes: Option<Vec<u8>>,
    mime_type: Option<String>,
}

impl Intent {
    /// Builds the intent for a successfully pre-read tag.
    pub fn ndef_from_tag(uid: TagUid, tech: TagTech, ndef_bytes: Vec<u8>) -> Intent {
        let mime_type = sniff_mime(&ndef_bytes);
        Intent {
            action: IntentAction::NdefDiscovered,
            source: IntentSource::Tag,
            tag: Some((uid, tech)),
            ndef_bytes: Some(ndef_bytes),
            mime_type,
        }
    }

    /// Builds the intent for a tag whose NDEF message was unreadable.
    pub fn tag_only(uid: TagUid, tech: TagTech) -> Intent {
        Intent {
            action: IntentAction::TagDiscovered,
            source: IntentSource::Tag,
            tag: Some((uid, tech)),
            ndef_bytes: None,
            mime_type: None,
        }
    }

    /// Builds the intent for a message pushed over Beam.
    pub fn ndef_from_beam(from: PhoneId, ndef_bytes: Vec<u8>) -> Intent {
        let mime_type = sniff_mime(&ndef_bytes);
        Intent {
            action: IntentAction::NdefDiscovered,
            source: IntentSource::Beam { from },
            tag: None,
            ndef_bytes: Some(ndef_bytes),
            mime_type,
        }
    }

    /// The dispatch category.
    pub fn action(&self) -> IntentAction {
        self.action
    }

    /// Where the payload came from.
    pub fn source(&self) -> IntentSource {
        self.source
    }

    /// The tag identity, when the intent came from a tag.
    pub fn tag(&self) -> Option<(TagUid, TagTech)> {
        self.tag
    }

    /// The raw NDEF message bytes, when readable.
    pub fn ndef_bytes(&self) -> Option<&[u8]> {
        self.ndef_bytes.as_deref()
    }

    /// The pre-read NDEF message, parsed. `None` when absent, blank, or
    /// unparseable.
    pub fn ndef_message(&self) -> Option<NdefMessage> {
        let bytes = self.ndef_bytes.as_deref()?;
        if bytes.is_empty() {
            return None;
        }
        NdefMessage::parse(bytes).ok()
    }

    /// The MIME type of the first record, when it has one — the value
    /// Android matches intent filters against.
    pub fn mime_type(&self) -> Option<&str> {
        self.mime_type.as_deref()
    }

    /// Whether this intent matches a MIME intent filter.
    pub fn matches_mime(&self, mime: &str) -> bool {
        self.mime_type.as_deref() == Some(mime)
    }
}

/// Extracts the filterable MIME type of a message's first record:
/// the record type for `Tnf::MimeMedia`, none otherwise (well-known and
/// external types filter by other mechanisms we don't need here).
fn sniff_mime(bytes: &[u8]) -> Option<String> {
    let message = NdefMessage::parse(bytes).ok()?;
    let first = message.first();
    if first.tnf() == Tnf::MimeMedia {
        first.record_type_str().map(str::to_owned)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morena_ndef::NdefRecord;

    fn mime_message(mime: &str, payload: &[u8]) -> Vec<u8> {
        NdefMessage::single(NdefRecord::mime(mime, payload.to_vec()).unwrap()).to_bytes()
    }

    #[test]
    fn ndef_from_tag_sniffs_mime_and_parses() {
        let uid = TagUid::from_seed(1);
        let bytes = mime_message("application/x-demo", b"p");
        let intent = Intent::ndef_from_tag(uid, TagTech::Type2, bytes);
        assert_eq!(intent.action(), IntentAction::NdefDiscovered);
        assert_eq!(intent.mime_type(), Some("application/x-demo"));
        assert!(intent.matches_mime("application/x-demo"));
        assert!(!intent.matches_mime("application/other"));
        assert_eq!(intent.tag(), Some((uid, TagTech::Type2)));
        assert_eq!(intent.ndef_message().unwrap().records().len(), 1);
    }

    #[test]
    fn tag_only_has_no_payload() {
        let intent = Intent::tag_only(TagUid::from_seed(2), TagTech::Type4);
        assert_eq!(intent.action(), IntentAction::TagDiscovered);
        assert_eq!(intent.ndef_bytes(), None);
        assert!(intent.ndef_message().is_none());
        assert_eq!(intent.mime_type(), None);
        assert!(!intent.matches_mime("a/b"));
    }

    #[test]
    fn beam_intent_carries_sender() {
        let from = PhoneId::from_u64(3);
        let intent = Intent::ndef_from_beam(from, mime_message("a/b", b"x"));
        assert_eq!(intent.source(), IntentSource::Beam { from });
        assert_eq!(intent.tag(), None);
        assert_eq!(intent.mime_type(), Some("a/b"));
    }

    #[test]
    fn blank_or_garbage_payloads_yield_no_message() {
        let intent = Intent::ndef_from_tag(TagUid::from_seed(4), TagTech::Type2, Vec::new());
        assert!(intent.ndef_message().is_none());
        assert_eq!(intent.mime_type(), None);
        let intent = Intent::ndef_from_tag(TagUid::from_seed(5), TagTech::Type2, vec![0xFF, 0x01]);
        assert!(intent.ndef_message().is_none());
    }

    #[test]
    fn non_mime_first_record_has_no_mime_filter_value() {
        let bytes = NdefMessage::single(morena_ndef::rtd::TextRecord::new("en", "hi").to_record())
            .to_bytes();
        let intent = Intent::ndef_from_tag(TagUid::from_seed(6), TagTech::Type2, bytes);
        assert_eq!(intent.mime_type(), None);
    }
}
