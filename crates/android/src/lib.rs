//! # morena-android-sim
//!
//! A headless stand-in for the slice of the Android platform that
//! NFC-enabled applications touch: activities with a lifecycle, NFC
//! intent dispatch (`ACTION_NDEF_DISCOVERED` / `ACTION_TAG_DISCOVERED`),
//! the single-threaded main looper, and toast notifications.
//!
//! The MORENA paper's critique targets this programming model: all NFC
//! events arrive as intents on the foreground activity, tag I/O blocks
//! and must be moved to hand-managed threads, and data conversion is the
//! application's problem. This crate reproduces the model faithfully so
//! both the handcrafted baseline and the MORENA middleware have the real
//! substrate to build on:
//!
//! * [`looper`] — the main-thread message queue ([`looper::MainThread`],
//!   [`looper::Handler`]).
//! * [`intent`] — typed NFC dispatch events with platform-side NDEF
//!   pre-reading and MIME sniffing.
//! * [`activity`] — the [`activity::Activity`] trait,
//!   [`activity::ActivityContext`], and [`activity::ActivityHost`] that
//!   pumps controller events into main-thread callbacks.
//! * [`ui`] — toasts and text fields for the example applications.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use morena_android_sim::activity::{Activity, ActivityContext, ActivityHost};
//! use morena_android_sim::intent::Intent;
//! use morena_nfc_sim::clock::VirtualClock;
//! use morena_nfc_sim::world::World;
//!
//! struct Greeter;
//! impl Activity for Greeter {
//!     fn on_new_intent(&self, ctx: &ActivityContext, _intent: Intent) {
//!         ctx.toast("tag!");
//!     }
//! }
//!
//! let world = World::new(VirtualClock::shared());
//! let phone = world.add_phone("alice");
//! let host = ActivityHost::launch(&world, phone, "greeter", Arc::new(Greeter));
//! assert!(host.toasts().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod intent;
pub mod looper;
pub mod ui;

pub use activity::{Activity, ActivityContext, ActivityHost};
pub use intent::{Intent, IntentAction, IntentSource};
pub use looper::{Handler, Looper, MainThread};
pub use ui::{TextField, ToastLog};
