//! Tiny headless stand-ins for the UI widgets the paper's example
//! applications touch: toasts (transient user notifications) and text
//! fields. Tests and experiments assert on their contents.

use std::sync::Arc;

use parking_lot::Mutex;

/// A captured stream of toast notifications, in display order.
///
/// # Examples
///
/// ```
/// use morena_android_sim::ui::ToastLog;
///
/// let toasts = ToastLog::new();
/// toasts.show("WiFi joiner created!");
/// assert_eq!(toasts.messages(), vec!["WiFi joiner created!".to_string()]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ToastLog {
    messages: Arc<Mutex<Vec<String>>>,
}

impl ToastLog {
    /// An empty toast log.
    pub fn new() -> ToastLog {
        ToastLog::default()
    }

    /// Shows (records) a toast.
    pub fn show(&self, message: impl Into<String>) {
        self.messages.lock().push(message.into());
    }

    /// All toasts shown so far, oldest first.
    pub fn messages(&self) -> Vec<String> {
        self.messages.lock().clone()
    }

    /// The most recent toast, if any.
    pub fn last(&self) -> Option<String> {
        self.messages.lock().last().cloned()
    }

    /// Number of toasts shown.
    pub fn len(&self) -> usize {
        self.messages.lock().len()
    }

    /// Whether no toast has been shown.
    pub fn is_empty(&self) -> bool {
        self.messages.lock().is_empty()
    }

    /// Whether any toast contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.messages.lock().iter().any(|m| m.contains(needle))
    }

    /// Blocks (polling) until a toast containing `needle` appears or
    /// `timeout` real time passes. Returns whether it appeared.
    pub fn wait_for(&self, needle: &str, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.contains(needle) {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        self.contains(needle)
    }
}

/// A shared, thread-safe text field (the `EditText` of the paper's simple
/// read/write application).
#[derive(Debug, Clone, Default)]
pub struct TextField {
    text: Arc<Mutex<String>>,
}

impl TextField {
    /// An empty text field.
    pub fn new() -> TextField {
        TextField::default()
    }

    /// Replaces the field's content.
    pub fn set_text(&self, text: impl Into<String>) {
        *self.text.lock() = text.into();
    }

    /// The field's current content.
    pub fn text(&self) -> String {
        self.text.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toast_log_records_in_order() {
        let log = ToastLog::new();
        assert!(log.is_empty());
        log.show("one");
        log.show(String::from("two"));
        assert_eq!(log.len(), 2);
        assert_eq!(log.messages(), vec!["one", "two"]);
        assert_eq!(log.last().as_deref(), Some("two"));
        assert!(log.contains("ne"));
        assert!(!log.contains("three"));
    }

    #[test]
    fn toast_log_clones_share_state() {
        let log = ToastLog::new();
        let view = log.clone();
        log.show("shared");
        assert_eq!(view.last().as_deref(), Some("shared"));
    }

    #[test]
    fn wait_for_sees_toast_from_another_thread() {
        let log = ToastLog::new();
        let writer = log.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            writer.show("late toast");
        });
        assert!(log.wait_for("late", std::time::Duration::from_secs(5)));
        t.join().unwrap();
    }

    #[test]
    fn text_field_round_trips() {
        let field = TextField::new();
        assert_eq!(field.text(), "");
        field.set_text("hello");
        assert_eq!(field.text(), "hello");
        let view = field.clone();
        view.set_text("shared");
        assert_eq!(field.text(), "shared");
    }
}
