//! Smart posters and fine-grained filtering (§3.4).
//!
//! A hallway is plastered with URI tags; the app cares only about the
//! ones pointing at its own domain, expressed with a `check_condition`
//! predicate on the discoverer — no manual filtering scattered through
//! application code.
//!
//! Run with: `cargo run --example smart_poster`

use std::sync::Arc;
use std::time::Duration;

use morena::core::convert::{ConvertError, TagDataConverter};
use morena::ndef::rtd::{SmartPoster, UriRecord};
use morena::prelude::*;

/// A converter for smart-poster tags, carrying `(uri, title)` pairs.
#[derive(Debug, Clone)]
struct PosterConverter;

impl TagDataConverter for PosterConverter {
    type Value = (String, String); // (uri, english title)

    fn mime_type(&self) -> &str {
        // Well-known RTD records are not MIME-typed; accept() is
        // overridden below instead.
        "application/vnd.example.poster"
    }

    fn to_message(&self, value: &(String, String)) -> Result<NdefMessage, ConvertError> {
        let poster = SmartPoster::new(&value.0).with_title("en", &value.1);
        Ok(NdefMessage::single(poster.to_record()))
    }

    fn from_message(&self, message: &NdefMessage) -> Result<(String, String), ConvertError> {
        let poster = SmartPoster::from_record(message.first())
            .map_err(|_| ConvertError::WrongShape { expected: "an RTD Smart Poster".into() })?;
        Ok((poster.uri().to_owned(), poster.title_for("en").unwrap_or_default().to_owned()))
    }

    fn accepts(&self, message: &NdefMessage) -> bool {
        SmartPoster::from_record(message.first()).is_ok()
    }
}

struct PosterListener;

impl DiscoveryListener<PosterConverter> for PosterListener {
    fn on_tag_detected(&self, reference: TagReference<PosterConverter>) {
        let (uri, title) = reference.cached().expect("cached on detection");
        println!("  -> poster accepted: {title:?} ({uri})");
    }

    fn on_tag_redetected(&self, reference: TagReference<PosterConverter>) {
        self.on_tag_detected(reference);
    }

    /// §3.4: only posters pointing at our own domain are interesting.
    fn check_condition(&self, reference: &TagReference<PosterConverter>) -> bool {
        reference
            .cached()
            .map(|(uri, _)| uri.starts_with("https://menu.example.com/"))
            .unwrap_or(false)
    }
}

fn main() {
    let world = World::with_link(SystemClock::shared(), LinkModel::reliable(), 3);
    let phone = world.add_phone("visitor");
    let ctx = MorenaContext::headless(&world, phone);
    let _discoverer = TagDiscoverer::new(&ctx, Arc::new(PosterConverter), Arc::new(PosterListener));

    // Put three posters on the wall: two foreign, one ours.
    let nfc = NfcHandle::new(world.clone(), phone);
    let posters = [
        ("https://ads.example.net/buy-now", "Buy now!"),
        ("https://menu.example.com/today", "Today's menu"),
        ("https://unrelated.example.org/", "Somewhere else"),
    ];
    for (i, (uri, title)) in posters.iter().enumerate() {
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(10 + i as u32))));
        world.tap_tag(uid, phone);
        let message = PosterConverter
            .to_message(&(uri.to_string(), title.to_string()))
            .expect("poster encodes");
        nfc.ndef_write(uid, &message.to_bytes()).expect("poster written");
        world.remove_tag_from_field(uid);
        println!("poster {} on the wall: {title:?} ({uri})", i + 1);

        // The visitor walks past and the phone scans it.
        world.tap_tag(uid, phone);
        std::thread::sleep(Duration::from_millis(150));
        world.remove_tag_from_field(uid);
    }

    // Also demonstrate that a plain URI record (not a poster) is ignored
    // by this discoverer entirely.
    let plain = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(99))));
    world.tap_tag(plain, phone);
    nfc.ndef_write(
        plain,
        &NdefMessage::single(UriRecord::new("https://menu.example.com/raw").to_record()).to_bytes(),
    )
    .expect("uri written");
    world.remove_tag_from_field(plain);
    world.tap_tag(plain, phone);
    std::thread::sleep(Duration::from_millis(150));

    println!("\nonly the poster matching the check_condition predicate was reported.");
}
