//! The paper's flagship application (§2): WiFi sharing via NFC.
//!
//! A venue owner provisions an RFID sticker with the guest network's
//! credentials; guests tap the sticker to join; one guest shares the
//! network with a friend phone-to-phone over Beam — including a share
//! that is *queued before the phones even meet*.
//!
//! Run with: `cargo run --example wifi_sharing`

use std::time::Duration;

use morena::apps::wifi::{WifiConfig, WifiManager};
use morena::apps::wifi_morena::MorenaWifiApp;
use morena::prelude::*;

fn main() {
    let link = LinkModel {
        setup_latency: Duration::from_millis(2),
        per_byte_latency: Duration::from_micros(20),
        ..LinkModel::realistic()
    };
    let world = World::with_link(SystemClock::shared(), link, 7);

    // Three phones: the venue owner and two guests.
    let owner_phone = world.add_phone("owner");
    let guest_phone = world.add_phone("guest");
    let friend_phone = world.add_phone("friend");
    let sticker = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));

    let owner =
        MorenaWifiApp::launch(&MorenaContext::headless(&world, owner_phone), WifiManager::new());
    let guest =
        MorenaWifiApp::launch(&MorenaContext::headless(&world, guest_phone), WifiManager::new());
    let friend =
        MorenaWifiApp::launch(&MorenaContext::headless(&world, friend_phone), WifiManager::new());

    // 1. The owner provisions the blank sticker.
    println!("1. owner provisions the sticker with 'venue-guest'");
    owner.provision(WifiConfig::new("venue-guest", "w1f1-pass"));
    world.tap_tag(sticker, owner_phone);
    assert!(owner.toasts().wait_for("WiFi joiner created!", Duration::from_secs(10)));
    println!("   owner toast: {:?}", owner.toasts().last().unwrap());
    world.remove_tag_from_field(sticker);

    // 2. A guest taps the sticker and joins.
    println!("2. guest taps the sticker");
    world.tap_tag(sticker, guest_phone);
    assert!(guest.toasts().wait_for("Joining Wifi network venue-guest", Duration::from_secs(10)));
    wait_until(|| guest.wifi().current_network().is_some());
    println!(
        "   guest joined: {:?} (toast: {:?})",
        guest.wifi().current_network().unwrap(),
        guest.toasts().last().unwrap()
    );
    world.remove_tag_from_field(sticker);

    // 3. The guest queues a share for a friend who is not nearby yet —
    //    MORENA batches the beam until the phones touch.
    println!("3. guest queues a share before the friend arrives");
    guest.share(WifiConfig::new("venue-guest", "w1f1-pass"));
    std::thread::sleep(Duration::from_millis(200));
    println!("   share still pending (no peer in range)");

    println!("4. phones touch: the queued share is delivered over Beam");
    world.bring_phones_together(guest_phone, friend_phone);
    assert!(guest.toasts().wait_for("WiFi joiner shared!", Duration::from_secs(10)));
    assert!(friend.toasts().wait_for("Joining Wifi network venue-guest", Duration::from_secs(10)));
    wait_until(|| friend.wifi().current_network().is_some());
    println!(
        "   friend joined: {:?} (toast: {:?})",
        friend.wifi().current_network().unwrap(),
        friend.toasts().last().unwrap()
    );

    println!("\nall three devices are on 'venue-guest'; no manual threads, no retry loops.");
    owner.close();
    guest.close();
    friend.close();
}

fn wait_until(cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline && !cond() {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(cond(), "condition not reached in time");
}
