//! Asset tracking with leases (§6's future work, implemented).
//!
//! A warehouse phone inventories tagged assets as they pass the reader
//! and performs custody handovers under a tag lease, while a second
//! phone's competing handover is correctly refused.
//!
//! Run with: `cargo run --example asset_tracker`

use std::time::Duration;

use morena::apps::asset_tracker::{AssetRecord, AssetTracker};
use morena::core::convert::TagDataConverter;
use morena::core::lease::{LeaseError, LeaseManager};
use morena::core::thing::Thing;
use morena::prelude::*;

fn main() {
    let world = World::with_link(SystemClock::shared(), LinkModel::reliable(), 11);
    let warehouse_phone = world.add_phone("warehouse");
    let ctx = MorenaContext::headless(&world, warehouse_phone);

    // Provision four tagged assets.
    let converter = AssetRecord::converter();
    let nfc = NfcHandle::new(world.clone(), warehouse_phone);
    let assets = ["forklift", "pallet-jack", "scanner", "drill"];
    let uids: Vec<TagUid> = assets
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let uid = world.add_tag(Box::new(Type2Tag::ntag216(TagUid::from_seed(i as u32))));
            world.tap_tag(uid, warehouse_phone);
            let record = AssetRecord::new(name);
            nfc.ndef_write(uid, &converter.to_message(&record).unwrap().to_bytes())
                .expect("asset provisioned");
            world.remove_tag_from_field(uid);
            uid
        })
        .collect();
    println!("provisioned {} tagged assets", uids.len());

    // The tracker inventories assets as they pass the dock door.
    let tracker = AssetTracker::launch(&ctx);
    for &uid in &uids {
        world.tap_tag(uid, warehouse_phone);
        wait_until(|| tracker.inventory().contains_key(&uid));
    }
    println!("\ninventory after the morning sweep:");
    for (uid, status) in tracker.inventory() {
        println!(
            "  {uid}  {:12}  in_range={}  sightings={}",
            status.record.name, status.in_range, status.sightings
        );
    }

    // Custody handover under a lease.
    println!("\nhandover: 'forklift' goes to alice (leased, exclusive)");
    let updated =
        tracker.handover(uids[0], "alice", Duration::from_secs(5)).expect("handover succeeds");
    println!("  record now: custodian={:?} handovers={}", updated.custodian, updated.handovers);

    // A rival device tries to grab the same tag while we hold a lease.
    let rival_phone = world.add_phone("rival");
    world.set_phone_position(rival_phone, morena::sim::geometry::Point::new(1000.0, 0.0));
    let rival = LeaseManager::new(&MorenaContext::headless(&world, rival_phone));
    let ours =
        tracker.leases().acquire(uids[0], Duration::from_secs(30)).expect("we can lease our asset");
    match rival.acquire(uids[0], Duration::from_secs(5)) {
        Err(LeaseError::Held { holder, expires_at }) => {
            println!("  rival refused: tag leased by {holder} until {expires_at}");
        }
        other => println!("  unexpected rival outcome: {other:?}"),
    }
    tracker.leases().release(&ours).expect("release");
    println!("  lease released; tag is free again");

    let final_custodian = tracker.inventory()[&uids[0]].record.custodian.clone();
    println!("\nfinal state: forklift custodian = {final_custodian:?}");
}

fn wait_until(cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline && !cond() {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(cond(), "condition not reached in time");
}
