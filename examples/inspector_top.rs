//! Live introspection: a "morena-top" view of a faulty swarm.
//!
//! Three phones each work a tag that flickers in and out of range while
//! a fault plan injects stuck-tag dwells and RF drops. A watchdog
//! thread polls the inspector a few times per second and prints the
//! rendered health table — queue depths, head-of-line ops with their
//! age against budget, retry counts, shard liveness, and the sim's
//! ground truth of who is physically in range — exactly the view you
//! want when a swarm run wedges.
//!
//! Run with: `cargo run --example inspector_top`

use std::sync::Arc;
use std::time::Duration;

use morena::prelude::*;
use morena_nfc_sim::faults::{FaultPlan, FaultRates};

fn main() {
    let world = World::with_link(SystemClock::shared(), LinkModel::realistic(), 42);
    world.install_fault_plan(
        FaultPlan::new(7, FaultRates { stuck_tag: 0.25, rf_drop: 0.10, ..FaultRates::default() })
            .with_delays(Duration::from_millis(4), Duration::from_millis(2)),
    );

    let mut scenario = Scenario::new();
    let mut references = Vec::new();
    for i in 0..3u64 {
        let phone = world.add_phone(&format!("swarm-{i}"));
        let ctx = MorenaContext::headless(&world, phone);
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(100 + i as u32))));
        let tag = TagReference::with_policy(
            &ctx,
            uid,
            TagTech::Type2,
            Arc::new(StringConverter::plain_text()),
            Policy::new()
                .with_timeout(Duration::from_secs(5))
                .with_backoff(Backoff::constant(Duration::from_millis(1))),
        );
        // A backlog queued before the tag is anywhere near the phone:
        // the table shows it draining as presence flickers.
        for n in 0..4 {
            tag.write(format!("payload-{i}-{n}"), |_| {}, |_, _| {});
        }
        scenario = scenario.presence_duty_cycle(uid, phone, Duration::from_millis(120), 0.5, 10);
        references.push(tag);
    }

    let driver = scenario.spawn(&world);
    let watchdog = Watchdog::default();
    for tick in 1..=8 {
        std::thread::sleep(Duration::from_millis(160));
        let snapshot = world.obs().inspector().snapshot(world.clock().now().as_nanos());
        let report = watchdog.evaluate_with_metrics(&snapshot, &world.obs().metrics().snapshot());
        println!("=== tick {tick} ===");
        println!("{}", render_top(&snapshot, &report));
    }
    driver.join().expect("scenario driver");
    for tag in references {
        tag.close();
    }

    let snapshot = world.obs().inspector().snapshot(world.clock().now().as_nanos());
    let report = watchdog.evaluate_with_metrics(&snapshot, &world.obs().metrics().snapshot());
    println!("final verdict: {}", report.health.label());
    println!("{} faults injected by the plan", world.fault_stats().total());
}
