//! Custom conversion strategies (§3): tags as durable pointers.
//!
//! A museum stores rich exhibit descriptions in a backend database; the
//! tags next to the exhibits carry only an 8-byte key (plus an Android
//! Application Record pinning the guide app). The `KeyedConverter`
//! resolves keys transparently, so visitors' phones still "read the
//! exhibit object from the tag" — exactly the paper's example of
//! *"storing specific fields of an object directly on the RFID tag
//! while other fields are stored in some external database"*.
//!
//! Run with: `cargo run --example museum_guide`

use std::sync::Arc;
use std::time::Duration;

use morena::core::discovery::DiscoveryListener;
use morena::core::keyed::{KeyedConverter, MemoryStore, ObjectStore};
use morena::ndef::rtd::AndroidApplicationRecord;
use morena::prelude::*;

/// The full exhibit object — far too large for an NTAG213 sticker.
#[derive(Debug, Clone)]
struct Exhibit {
    title: String,
    description: String,
}

struct GuideListener;

impl DiscoveryListener<KeyedConverter<Exhibit>> for GuideListener {
    fn on_tag_detected(&self, reference: TagReference<KeyedConverter<Exhibit>>) {
        let exhibit = reference.cached().expect("resolved from the backend");
        println!("  ➜ {}", exhibit.title);
        println!("    {}", exhibit.description);
    }

    fn on_tag_redetected(&self, reference: TagReference<KeyedConverter<Exhibit>>) {
        self.on_tag_detected(reference);
    }
}

fn main() {
    let world = World::with_link(SystemClock::shared(), LinkModel::reliable(), 5);
    let phone = world.add_phone("visitor");
    let ctx = MorenaContext::headless(&world, phone);

    // The museum's backend database.
    let backend: Arc<MemoryStore<Exhibit>> = Arc::new(MemoryStore::new());
    let converter = Arc::new(KeyedConverter::new(
        "application/vnd.museum.exhibit-key",
        Arc::clone(&backend) as Arc<dyn ObjectStore<Exhibit>>,
    ));

    let _guide = TagDiscoverer::new(&ctx, Arc::clone(&converter), Arc::new(GuideListener));

    // Curate three exhibits: the description lives in the backend, the
    // sticker gets only the key (and an AAR pinning the guide app).
    let nfc = NfcHandle::new(world.clone(), phone);
    let exhibits = [
        ("The Night Watch", "Rembrandt van Rijn, 1642. Militia company of District II."),
        ("Girl with a Pearl Earring", "Johannes Vermeer, c. 1665. Tronie of a girl."),
        ("The Garden of Earthly Delights", "Hieronymus Bosch, 1490-1510. Triptych."),
    ];
    let mut uids = Vec::new();
    for (i, (title, description)) in exhibits.iter().enumerate() {
        // smallest sticker: 144-byte data area — the description alone
        // would not fit, but the key always does.
        let uid = world.add_tag(Box::new(Type2Tag::ntag213(TagUid::from_seed(i as u32))));
        world.tap_tag(uid, phone);
        let mut message = converter
            .to_message(&Exhibit { title: title.to_string(), description: description.to_string() })
            .expect("key encodes")
            .into_records();
        message.push(AndroidApplicationRecord::new("com.museum.guide").to_record());
        nfc.ndef_write(uid, &NdefMessage::new(message).to_bytes()).expect("sticker written");
        world.remove_tag_from_field(uid);
        uids.push(uid);
    }
    println!(
        "curated {} exhibits; backend holds {} objects; each sticker stores 8 key bytes + AAR\n",
        uids.len(),
        backend.len()
    );

    // The visitor walks the gallery.
    for uid in uids {
        world.tap_tag(uid, phone);
        std::thread::sleep(Duration::from_millis(120));
        world.remove_tag_from_field(uid);
    }
    std::thread::sleep(Duration::from_millis(100));
    println!("\ntour complete — descriptions came from the backend, keys from the tags.");
}
