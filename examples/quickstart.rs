//! Quickstart: the essence of MORENA in one minute.
//!
//! A phone queues a write against a tag that is *not there yet* — then a
//! user taps the tag and the middleware delivers the write, retries
//! included, with the listener arriving on the main thread.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use morena::prelude::*;

fn main() {
    // A simulated world on the system clock with a realistically flaky
    // radio link (1% noise at contact, 4 cm field).
    let link = LinkModel {
        setup_latency: Duration::from_millis(2),
        per_byte_latency: Duration::from_micros(20),
        ..LinkModel::realistic()
    };
    let world = World::with_link(SystemClock::shared(), link, 42);
    let phone = world.add_phone("alice");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    println!("world ready: phone 'alice', one blank NTAG215 sticker ({uid})");

    // Attach the middleware (no activity needed) and get a far reference.
    let ctx = MorenaContext::headless(&world, phone);
    let tag = TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));

    // Queue a write while the tag is still in a drawer somewhere.
    let (tx, rx) = crossbeam::channel::unbounded();
    tag.write(
        "Hello from MORENA!".to_string(),
        move |reference| {
            println!("  [main thread] write succeeded, cache = {:?}", reference.cached());
            tx.send(()).unwrap();
        },
        |_, failure| println!("  [main thread] write failed: {failure}"),
    );
    println!("write queued; tag is out of range (queued ops: {})", tag.queue_len());

    // The user walks over and taps the tag.
    std::thread::sleep(Duration::from_millis(300));
    println!("tap!");
    world.tap_tag(uid, phone);
    rx.recv_timeout(Duration::from_secs(10)).expect("write completes");

    // Read it back asynchronously.
    let (tx, rx) = crossbeam::channel::unbounded();
    tag.read(
        move |reference| {
            tx.send(reference.cached()).unwrap();
        },
        |_, failure| println!("read failed: {failure}"),
    );
    let content = rx.recv_timeout(Duration::from_secs(10)).expect("read completes");
    println!("tag now stores: {:?}", content.expect("content present"));

    let stats = tag.stats().snapshot();
    println!(
        "middleware stats: {} ops submitted, {} physical attempts, {} transient failures retried",
        stats.submitted, stats.attempts, stats.transient_failures
    );
    tag.close();
}
