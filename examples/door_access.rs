//! Door access control: the second complete application of this
//! reproduction. A badge office issues credentials onto blank tags under
//! exclusive leases; doors check badges against their policy; revocation
//! takes effect on the next tap.
//!
//! Run with: `cargo run --example door_access`

use std::time::Duration;

use morena::apps::door_access::{BadgeOffice, Door};
use morena::prelude::*;

fn main() {
    let world = World::with_link(SystemClock::shared(), LinkModel::reliable(), 17);
    let office_phone = world.add_phone("badge-office");
    let lobby_phone = world.add_phone("lobby-door");
    let lab_phone = world.add_phone("lab-door");

    let office = BadgeOffice::open(&MorenaContext::headless(&world, office_phone));
    let lobby = Door::install(&MorenaContext::headless(&world, lobby_phone), 1);
    let lab = Door::install(&MorenaContext::headless(&world, lab_phone), 5);
    println!("doors installed: lobby requires level 1, lab requires level 5\n");

    // Issue two badges.
    let alice_badge = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    let bob_badge = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(2))));
    world.tap_tag(alice_badge, office_phone);
    office.issue(alice_badge, "alice", 7).expect("issue alice");
    world.remove_tag_from_field(alice_badge);
    world.tap_tag(bob_badge, office_phone);
    office.issue(bob_badge, "bob", 1).expect("issue bob");
    world.remove_tag_from_field(bob_badge);
    println!("issued: alice (level 7), bob (level 1)\n");

    // Both enter the lobby; only alice gets into the lab.
    for (badge, who) in [(alice_badge, "alice"), (bob_badge, "bob")] {
        world.tap_tag(badge, lobby_phone);
        wait_until(|| !lobby.decisions_for(badge).is_empty());
        world.remove_tag_from_field(badge);
        world.tap_tag(badge, lab_phone);
        wait_until(|| !lab.decisions_for(badge).is_empty());
        world.remove_tag_from_field(badge);
        let lobby_ok = lobby.decisions_for(badge)[0].granted;
        let lab_ok = lab.decisions_for(badge)[0].granted;
        println!("{who}: lobby {} · lab {}", verdict(lobby_ok), verdict(lab_ok));
    }

    // Alice's badge is revoked; the next tap is denied everywhere.
    println!("\nrevoking alice's badge…");
    world.tap_tag(alice_badge, office_phone);
    office.revoke(alice_badge).expect("revoke");
    world.remove_tag_from_field(alice_badge);
    world.tap_tag(alice_badge, lobby_phone);
    wait_until(|| lobby.decisions_for(alice_badge).len() >= 2);
    let after = &lobby.decisions_for(alice_badge)[1];
    println!("alice at the lobby after revocation: {}", verdict(after.granted));

    println!("\naudit log of the lobby door:");
    for decision in lobby.audit_log() {
        println!("  {} {:8} -> {}", decision.uid, decision.holder, verdict(decision.granted));
    }
}

fn verdict(granted: bool) -> &'static str {
    if granted {
        "GRANTED"
    } else {
        "denied"
    }
}

fn wait_until(cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline && !cond() {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(cond(), "condition not reached in time");
}
