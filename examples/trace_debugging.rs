//! Observability: watching the middleware work through the world trace.
//!
//! Enables physical-event tracing, runs one fault-ridden write (the tag
//! leaves mid-operation and comes back), and then prints the ground
//! truth — every proximity change and radio exchange — next to the
//! middleware's own statistics. This is the debugging workflow for "why
//! did my write take three attempts?".
//!
//! Run with: `cargo run --example trace_debugging`

use std::sync::Arc;
use std::time::Duration;

use morena::prelude::*;

fn main() {
    let link = LinkModel {
        setup_latency: Duration::from_millis(2),
        per_byte_latency: Duration::from_micros(20),
        base_failure_prob: 0.10,
        edge_failure_prob: 0.10,
        ..LinkModel::realistic()
    };
    let world = World::with_link(SystemClock::shared(), link, 99);
    world.enable_trace(256);

    let phone = world.add_phone("debugger");
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));
    let ctx = MorenaContext::headless(&world, phone);
    let tag = TagReference::new(&ctx, uid, TagTech::Type2, Arc::new(StringConverter::plain_text()));

    println!("submitting one write; the tag will be yanked away mid-operation…\n");
    let (tx, rx) = crossbeam::channel::unbounded();
    tag.write(
        "x".repeat(200),
        move |_| tx.send(()).unwrap(),
        |_, failure| println!("write failed: {failure}"),
    );

    // A shaky hand: in, out, in again.
    world.tap_tag(uid, phone);
    std::thread::sleep(Duration::from_millis(12));
    world.remove_tag_from_field(uid);
    std::thread::sleep(Duration::from_millis(25));
    world.tap_tag(uid, phone);
    rx.recv_timeout(Duration::from_secs(30)).expect("write completes");

    // Ground truth: what physically happened on the radio.
    let (entries, dropped) = world.trace_snapshot();
    println!("world trace ({} events, {} dropped):", entries.len(), dropped);
    for entry in entries.iter().take(30) {
        println!("  {entry}");
    }
    if entries.len() > 30 {
        println!("  … {} more", entries.len() - 30);
    }

    // The middleware's accounting of the same story.
    let stats = tag.stats().snapshot();
    println!("\nmiddleware stats:");
    println!("  submitted            {}", stats.submitted);
    println!("  physical attempts    {}", stats.attempts);
    println!("  transient failures   {}", stats.transient_failures);
    println!("  succeeded            {}", stats.succeeded);
    if let Some(mean) = stats.mean_attempt() {
        println!("  mean attempt         {mean:?}");
    }
    if let Some(mean) = stats.mean_completion() {
        println!("  submit-to-success    {mean:?}");
    }

    let radio = world.radio_stats();
    println!("\nradio ground truth:");
    println!("  exchanges            {}", radio.exchanges);
    println!("  failed exchanges     {}", radio.failed);
    println!("  bytes over the air   {}", radio.bytes);
    println!("  air time             {:?}", Duration::from_nanos(radio.air_time_nanos));
    tag.close();
}
