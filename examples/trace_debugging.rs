//! Causal tracing: following one interaction across two phones.
//!
//! A courier phone beams a payload to a kiosk phone; the kiosk's beam
//! handler writes what it received to an inventory tag. Three
//! application-visible steps on two devices — and one trace. The
//! middleware mints a `TraceContext` at the courier's beam op, ships it
//! in-band as a reserved NDEF record, and the kiosk's handler (and the
//! write it issues) inherit it, so the whole causal chain shares a
//! trace id with parent/child span edges.
//!
//! The example prints the raw traced events, the per-trace critical
//! path (which hop, and which latency component, dominated), and writes
//! a flow-linked Chrome trace to `trace_debugging_chrome.json` — load
//! it in <https://ui.perfetto.dev> and the spans are connected by flow
//! arrows. It asserts the trace is **connected**: exactly one root and
//! every span's parent observed.
//!
//! Run with: `cargo run --example trace_debugging`

use std::sync::Arc;
use std::time::Duration;

use morena::core::beam::{BeamListener, BeamReceiver, Beamer};
use morena::obs::{analyze_traces, export_chrome_trace};
use morena::prelude::*;

/// The kiosk's handler: persist whatever arrives onto the local tag.
struct PersistToTag {
    tag: Arc<TagReference<StringConverter>>,
    written: crossbeam::channel::Sender<()>,
}

impl BeamListener<StringConverter> for PersistToTag {
    fn on_beam_received(&self, value: String) {
        println!("kiosk: received {value:?}, writing it to the inventory tag…");
        let done = self.written.clone();
        self.tag.write(value, move |_| done.send(()).unwrap(), |_, f| panic!("write failed: {f}"));
    }
}

fn main() {
    let link = LinkModel {
        setup_latency: Duration::from_millis(2),
        per_byte_latency: Duration::from_micros(20),
        base_failure_prob: 0.0,
        edge_failure_prob: 0.0,
        ..LinkModel::realistic()
    };
    let world = World::with_link(Arc::new(SystemClock::new()), link, 99);
    let ring = Arc::new(RingSink::new(16_384));
    world.obs().install(ring.clone());

    let courier = world.add_phone("courier");
    let kiosk = world.add_phone("kiosk");
    let courier_ctx = MorenaContext::headless(&world, courier);
    let kiosk_ctx = MorenaContext::headless(&world, kiosk);
    let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(1))));

    let tag = Arc::new(TagReference::new(
        &kiosk_ctx,
        uid,
        TagTech::Type2,
        Arc::new(StringConverter::plain_text()),
    ));
    let (written_tx, written_rx) = crossbeam::channel::unbounded();
    let _receiver = BeamReceiver::new(
        &kiosk_ctx,
        Arc::new(StringConverter::plain_text()),
        Arc::new(PersistToTag { tag: Arc::clone(&tag), written: written_tx }),
    );

    println!("courier: beaming the manifest to the kiosk…");
    let beamer = Beamer::new(&courier_ctx, Arc::new(StringConverter::plain_text()));
    world.bring_phones_together(courier, kiosk);
    beamer.beam_ok("manifest: 3 crates of part #17".to_string());

    // Give the kiosk the tag once the handler has had a chance to queue
    // its write — the op waits out of range, then lands.
    std::thread::sleep(Duration::from_millis(30));
    world.tap_tag(uid, kiosk);
    written_rx.recv_timeout(Duration::from_secs(30)).expect("handler write completes");
    tag.close();
    world.obs().flush();
    let events = ring.snapshot();

    // The raw story: the traced events, with their span edges.
    let traced: Vec<_> = events.iter().filter(|e| e.trace.is_some()).collect();
    println!("\ntraced events (trace_id / span <- parent):");
    for event in traced.iter().take(25) {
        let t = event.trace.unwrap();
        println!(
            "  trace {} / span {} <- {}  {}",
            t.trace_id,
            t.span_id,
            t.parent_span_id,
            event.kind.type_label(),
        );
    }
    if traced.len() > 25 {
        println!("  … {} more", traced.len() - 25);
    }

    // The analyzed story: one connected trace spanning both phones,
    // with per-hop latency attribution.
    let analysis = analyze_traces(&events);
    let trace = analysis
        .iter()
        .max_by_key(|t| (t.phones, t.spans))
        .expect("the beam chain must have minted a trace");
    assert!(
        trace.connected,
        "the trace must be connected (one root, every parent observed): {trace:?}"
    );
    assert!(trace.phones >= 2, "the trace must span both phones");
    println!(
        "\ntrace {}: {} spans on {} phones over {:.3}ms — connected",
        trace.trace_id,
        trace.spans,
        trace.phones,
        trace.total_nanos as f64 / 1e6,
    );
    for hop in &trace.hops {
        let b = &hop.breakdown;
        println!(
            "  hop span {} <- {}: {} on phone-{} | total {:.3}ms = out-of-range {:.3}ms \
             + exchange {:.3}ms + queue {:.3}ms",
            hop.span_id,
            hop.parent_span_id,
            b.op.label(),
            b.phone,
            b.total_nanos as f64 / 1e6,
            b.out_of_range_nanos as f64 / 1e6,
            b.exchange_nanos as f64 / 1e6,
            b.queue_nanos as f64 / 1e6,
        );
    }
    if let (Some(i), Some(component)) = (trace.dominant_hop, trace.dominant_component) {
        println!(
            "  critical path: hop {} dominated, mostly {}",
            trace.hops[i].span_id,
            component.label(),
        );
    }

    // The visual story: flow-linked Chrome trace for Perfetto.
    let path = "trace_debugging_chrome.json";
    std::fs::write(path, export_chrome_trace(&events)).expect("write chrome export");
    println!("\nwrote {path} — open in https://ui.perfetto.dev and follow the flow arrows");

    assert_eq!(tag.cached().as_deref(), Some("manifest: 3 crates of part #17"));
    println!("tag now holds the beamed manifest: causality verified end-to-end.");
}
