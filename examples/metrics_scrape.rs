//! Scraping MORENA: the continuous telemetry plane end to end.
//!
//! A small faulty swarm runs while three consumers watch it live:
//!
//! * an [`ExpositionServer`] serves `/metrics` as OpenMetrics text on an
//!   ephemeral localhost port — the example scrapes itself the way a
//!   Prometheus agent would and prints a slice of the exposition;
//! * a background [`Sampler`] captures per-second rates, queue depths,
//!   and health verdicts into ring buffers, rendered as sparklines in
//!   the `morena-top` table;
//! * a [`FlightRecorder`] tees off the event stream, keeping the last
//!   moments of every component in memory; the example dumps it on
//!   demand at the end, the same JSON a stall or panic would produce.
//!
//! Run with: `cargo run --example metrics_scrape`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use morena::obs::{FlightRecorder, SamplerConfig, WatchdogConfig};
use morena::prelude::*;
use morena_nfc_sim::faults::{FaultPlan, FaultRates};

fn main() {
    let world = World::with_link(SystemClock::shared(), LinkModel::realistic(), 42);
    world.install_fault_plan(
        FaultPlan::new(7, FaultRates { rf_drop: 0.15, ..FaultRates::default() })
            .with_delays(Duration::from_millis(1), Duration::from_millis(1)),
    );

    // The flight recorder rides the event stream from the start, so by
    // the time anything goes wrong it already holds the lead-up.
    let flight = Arc::new(FlightRecorder::default());
    world.obs().attach(flight.clone());

    let mut references = Vec::new();
    let mut sampler = None;
    let mut server = None;
    for i in 0..3u64 {
        let phone = world.add_phone(&format!("swarm-{i}"));
        let ctx = MorenaContext::headless(&world, phone);
        if sampler.is_none() {
            sampler = Some(ctx.start_sampler(SamplerConfig {
                interval: Duration::from_millis(100),
                flight: Some(flight.clone()),
                dump_dir: Some(std::env::temp_dir().join("morena-flight")),
                ..SamplerConfig::default()
            }));
            server = Some(
                ctx.serve_metrics(("127.0.0.1", 0), WatchdogConfig::default())
                    .expect("bind exposition endpoint"),
            );
        }
        let uid = world.add_tag(Box::new(Type2Tag::ntag215(TagUid::from_seed(100 + i as u32))));
        world.tap_tag(uid, phone);
        let tag = TagReference::with_policy(
            &ctx,
            uid,
            TagTech::Type2,
            Arc::new(StringConverter::plain_text()),
            Policy::new()
                .with_timeout(Duration::from_secs(5))
                .with_backoff(Backoff::constant(Duration::from_millis(1))),
        );
        for n in 0..6 {
            tag.write(format!("payload-{i}-{n}"), |_| {}, |_, _| {});
        }
        references.push(tag);
    }
    let mut sampler = sampler.expect("sampler started");
    let mut server = server.expect("server started");
    println!("serving OpenMetrics on http://{}/metrics", server.local_addr());

    // Scrape ourselves twice while the swarm drains, like an agent on a
    // short interval would.
    for scrape in 1..=2 {
        std::thread::sleep(Duration::from_millis(400));
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: morena\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or(&response);
        println!("=== scrape {scrape}: {} lines, ops counters ===", body.lines().count());
        for line in body.lines() {
            if line.starts_with("morena_ops_") || line.starts_with("morena_health ") {
                println!("  {line}");
            }
        }
    }

    // The sampler has been recording the whole time: render the top
    // table with its sparkline history next to each loop.
    let snapshot = world.obs().inspector().snapshot(world.clock().now().as_nanos());
    let report =
        Watchdog::default().evaluate_with_metrics(&snapshot, &world.obs().metrics().snapshot());
    println!("{}", morena::obs::render_top_with_series(&snapshot, &report, sampler.series()));

    for tag in references {
        tag.close();
    }

    // On-demand flight dump: the same JSON a watchdog stall transition
    // or a panic would write, here just to show what it carries.
    let dump = flight.dump_json("example", world.clock().now().as_nanos(), Some(&report));
    println!("flight dump: {} bytes covering {:?}", dump.len(), flight.component_names());
    println!("{} scrapes served", server.scrapes());
    sampler.stop();
    server.shutdown();
}
