//! Far references to phones: the ambient-oriented model generalized.
//!
//! Alice queues messages for two specific colleagues while neither is
//! around; each message is delivered — exactly to its addressee — when
//! that phone is eventually bumped against hers. The same
//! decoupling-in-time machinery that drives tag references drives these
//! peer references.
//!
//! Run with: `cargo run --example peer_messaging`

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;
use morena::core::peer::{PeerInbox, PeerListener, PeerReference};
use morena::prelude::*;

struct Print {
    me: &'static str,
    tx: crossbeam::channel::Sender<()>,
}

impl PeerListener<StringConverter> for Print {
    fn on_message(&self, from: PhoneId, value: String) {
        println!("  [{}] message from {from}: {value:?}", self.me);
        let _ = self.tx.send(());
    }
}

fn main() {
    let world = World::with_link(SystemClock::shared(), LinkModel::reliable(), 13);
    let alice = world.add_phone("alice");
    let bob = world.add_phone("bob");
    let carol = world.add_phone("carol");

    let alice_ctx = MorenaContext::headless(&world, alice);
    let bob_ctx = MorenaContext::headless(&world, bob);
    let carol_ctx = MorenaContext::headless(&world, carol);
    let conv = Arc::new(StringConverter::plain_text());

    let (bob_got_tx, bob_got) = unbounded();
    let (carol_got_tx, carol_got) = unbounded();
    let _bob_inbox =
        PeerInbox::new(&bob_ctx, Arc::clone(&conv), Arc::new(Print { me: "bob", tx: bob_got_tx }));
    let _carol_inbox = PeerInbox::new(
        &carol_ctx,
        Arc::clone(&conv),
        Arc::new(Print { me: "carol", tx: carol_got_tx }),
    );

    // Alice holds far references to both colleagues.
    let to_bob = PeerReference::new(&alice_ctx, bob, Arc::clone(&conv));
    let to_carol = PeerReference::new(&alice_ctx, carol, Arc::clone(&conv));

    println!("alice queues messages while nobody is around:");
    to_bob.send_ok("lunch at noon?".to_string());
    to_bob.send_ok("bring the prototype".to_string());
    to_carol.send_ok("code review at 3".to_string());
    println!("  queued: {} for bob, {} for carol\n", to_bob.queue_len(), to_carol.queue_len());

    println!("alice bumps into CAROL first — only carol's message flows:");
    world.bring_phones_together(alice, carol);
    carol_got.recv_timeout(Duration::from_secs(10)).expect("carol receives");
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(to_bob.queue_len(), 2, "bob's messages must still be queued");
    println!("  bob's {} messages still wait for him\n", to_bob.queue_len());
    world.separate_phone(carol);

    println!("later, alice bumps into BOB — his backlog flushes in order:");
    world.bring_phones_together(alice, bob);
    bob_got.recv_timeout(Duration::from_secs(10)).expect("bob receives 1");
    bob_got.recv_timeout(Duration::from_secs(10)).expect("bob receives 2");
    std::thread::sleep(Duration::from_millis(30)); // let counters settle

    let stats = to_bob.stats().snapshot();
    println!(
        "\nto_bob stats: {} submitted, {} delivered, {} physical attempts",
        stats.submitted, stats.succeeded, stats.attempts
    );
    to_bob.close();
    to_carol.close();
}
